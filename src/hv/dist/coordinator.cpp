#include "hv/dist/coordinator.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "hv/cert/certificate.h"
#include "hv/checker/fault.h"
#include "hv/checker/guard_analysis.h"
#include "hv/checker/journal.h"
#include "hv/checker/schema_solver.h"
#include "hv/ta/parser.h"
#include "hv/util/error.h"
#include "hv/util/stopwatch.h"
#include "hv/util/version.h"

namespace hv::dist {

namespace {

using Clock = std::chrono::steady_clock;

enum class LeaseState { kPending, kActive, kDone, kDropped };

struct Lease {
  std::size_t property = 0;
  std::size_t query = 0;
  checker::SubtreeTask task;
  LeaseState state = LeaseState::kPending;
};

// Merge state of one property; mirrors the in-process RunState counters so
// the final PropertyResult is assembled identically.
struct PropMerge {
  std::int64_t checked = 0;
  std::int64_t pruned = 0;
  std::int64_t cut = 0;
  std::int64_t lemma_hits = 0;
  std::int64_t lemmas_learned = 0;
  std::int64_t unknown = 0;
  std::int64_t resumed = 0;
  std::int64_t retries = 0;
  std::int64_t enumerated = 0;
  std::int64_t total_length = 0;
  std::int64_t pivots = 0;
  std::int64_t rational_fast_ops = 0;
  std::int64_t rational_big_ops = 0;
  bool stopped = false;           // counterexample or validation failure
  bool budget_exhausted = false;  // per-property schema budget, as in-process
  std::optional<checker::Counterexample> counterexample;
  std::string error_note;
  std::string degrade_note;
  checker::IncrementalStats incremental;
  std::vector<checker::SchemaEvidence> evidence;
  std::vector<checker::PrunedSchema> pruned_schemas;
  double seconds = 0.0;
  bool finished = false;
  /// Origin (connection serial) of the sat record that stopped this
  /// property, so a revocation knows whether the witness came from the
  /// revoked worker (-1: in-process / resume).
  int sat_origin = -1;
  /// Spot-check accounting and the first disagreement diagnostic.
  std::int64_t spot_checks = 0;
  std::int64_t spot_failures = 0;
  std::string disagreement;
};

// --- worker health ----------------------------------------------------------
//
// Per-label scores feed an escalating quarantine ladder. Points: a
// spot-check disagreement is an instant ban; hostile frames, chronic lease
// timeouts and reconnect churn accumulate toward a cool-down, and a label
// that keeps earning quarantines is banned for the run. The thresholds are
// deliberately coarse — the defense against a *wrong verdict* is the
// validation and spot-checking, not the score; the score only bounds how
// much time a misbehaving peer can waste.
constexpr double kSpotFailPenalty = 100.0;
constexpr double kHostilePenalty = 40.0;
constexpr double kTimeoutPenalty = 25.0;
constexpr double kChurnPenalty = 10.0;
constexpr std::int64_t kFreeRejoins = 3;  // reconnects before churn costs points
constexpr double kQuarantineScore = 40.0;
constexpr double kBanScore = 100.0;
constexpr int kQuarantinesBeforeBan = 3;

struct WorkerHealth {
  double score = 0.0;
  std::int64_t joins = 0;
  int quarantines = 0;
  Clock::time_point quarantined_until{};
  bool banned = false;
};

/// One applied record of an untrusted origin, remembered (only while
/// spot-checking is armed) so a later disagreement can revoke everything
/// that origin contributed.
struct AppliedRecord {
  std::size_t p = 0;
  std::size_t q = 0;
  std::string key;
  std::string cursor;
  std::string verdict;
  std::int64_t length = 0;
  std::int64_t pivots = 0;
  std::int64_t fast_ops = 0;
  std::int64_t big_ops = 0;
  std::int64_t retries = 0;
};

bool definitive_verdict(const std::string& verdict) {
  return verdict == "pruned" || verdict == "unsat" || verdict == "sat";
}

// A connection the coordinator can push frames to; `learn` records whether
// both sides advertised the "learn" feature.
struct ConnInfo {
  Conn* conn = nullptr;
  bool learn = false;
};

struct Coord {
  const std::vector<spec::Property>* properties = nullptr;
  const DistOptions* options = nullptr;
  checker::CheckOptions check;  // normalized copy shipped to workers
  cert::Json welcome;
  /// Coordinator-side learning gate (checker::lemmas_enabled on the run's
  /// options): when off, learn frames are neither advertised nor folded.
  bool learn = false;

  std::mutex mutex;
  std::vector<Lease> leases;
  std::vector<PropMerge> props;
  /// Cross-schema learning facts folded from workers (and the resume
  /// journal), keyed by (property, query). Cuts are unsat chain prefixes;
  /// lemmas are premise-string lists deduplicated via lemma_keys. Both are
  /// shipped inside lease grants and broadcast as learn frames so every
  /// worker abandons subtrees another worker already refuted.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::vector<int>>> cuts_by_pq;
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::vector<std::string>>>
      lemmas_by_pq;
  std::unordered_set<std::string> lemma_keys;
  /// Verdict dedup and conflict detection: ResumeState::key(property name,
  /// cursor) -> verdict of everything settled (by resume replay, a worker
  /// record or an in-process solve). Makes reassignment replays idempotent
  /// and lets the handlers reject a definitive verdict that contradicts an
  /// already-settled one.
  std::unordered_map<std::string, std::string> settled;
  /// Settled cursors organized for per-lease skip lists:
  /// (property, query) -> [(unlock_order, cursor)].
  std::map<std::pair<std::size_t, std::size_t>,
           std::vector<std::pair<std::vector<int>, std::string>>>
      settled_by_pq;
  checker::ProgressJournal* journal = nullptr;
  bool closing = false;
  bool timed_out = false;
  bool interrupted = false;
  DistStats stats;
  std::vector<ConnInfo> open_conns;
  const Stopwatch* watch = nullptr;

  /// Byzantine defense: per-label health, per-origin applied-record logs
  /// (spot-check mode only) and the next connection serial.
  std::unordered_map<std::string, WorkerHealth> health;
  std::unordered_map<int, std::vector<AppliedRecord>> applied_by_origin;
  int next_origin = 0;
  /// Spot checks currently running outside the mutex; run_complete waits
  /// for zero so a pending revocation can never race the run's completion.
  int spot_inflight = 0;

  /// In-process solving (spot checks and fleet-exhausted degradation).
  /// `solve_mutex` serializes all use of the lazily built solvers/cones;
  /// never acquire it while holding `mutex` from a handler thread (the
  /// self-solve path takes solve_mutex first, then mutex per schema).
  const checker::GuardAnalysis* analysis = nullptr;
  std::mutex solve_mutex;
  std::vector<std::unique_ptr<checker::SchemaSolver>> inline_solvers;
  std::map<std::pair<std::size_t, std::size_t>, std::unique_ptr<checker::QueryCone>>
      inline_cones;
  checker::FaultInjector inline_injector{checker::FaultPlan{}};  // never armed
  std::atomic<std::int64_t> inline_memory_polls{0};
};

/// Caller holds solve_mutex.
const checker::QueryCone* inline_cone_for(Coord& c, std::size_t p, std::size_t q) {
  if (!c.check.property_directed_pruning) return nullptr;
  auto& slot = c.inline_cones[{p, q}];
  if (!slot) {
    slot = std::make_unique<checker::QueryCone>(*c.analysis, (*c.properties)[p].queries[q]);
  }
  return slot.get();
}

/// Caller holds solve_mutex. The coordinator's solvers never learn: the
/// lemma pool is worker-facing state, and a spot check must reproduce an
/// honest worker's verdict, which learning cannot change, only accelerate.
checker::SchemaSolver& inline_solver_for(Coord& c, std::size_t p) {
  if (c.inline_solvers.empty()) c.inline_solvers.resize(c.properties->size());
  auto& slot = c.inline_solvers[p];
  if (!slot) {
    checker::SolveHooks hooks;
    hooks.run_watch = c.watch;
    hooks.injector = &c.inline_injector;
    hooks.memory_polls = &c.inline_memory_polls;
    slot = std::make_unique<checker::SchemaSolver>(*c.analysis, (*c.properties)[p], c.check,
                                                   hooks);
  }
  return *slot;
}

double inline_remaining(const Coord& c) {
  return c.check.timeout_seconds > 0.0 ? c.check.timeout_seconds - c.watch->seconds() : 0.0;
}

/// Raises one label's score (caller holds the mutex); crossing the ban
/// threshold is recorded immediately so a hello can be rejected even before
/// the next quarantine evaluation.
void penalize(Coord& c, const std::string& label, double points) {
  WorkerHealth& health = c.health[label];
  health.score += points;
  if (!health.banned && health.score >= kBanScore) {
    health.banned = true;
    ++c.stats.workers_banned;
  }
}

void bump(Coord& c, std::atomic<std::int64_t> checker::ProgressCounters::* counter,
          std::int64_t delta = 1) {
  if (c.check.progress != nullptr) {
    (c.check.progress->*counter).fetch_add(delta, std::memory_order_relaxed);
  }
}

void journal_append(Coord& c, const std::string& property, const std::string& cursor,
                    const char* verdict, std::int64_t length = 0, std::int64_t pivots = 0,
                    const std::string& note = {}, std::int64_t cut = -1) {
  if (c.journal == nullptr) return;
  checker::JournalRecord record;
  record.property = property;
  record.cursor = cursor;
  record.verdict = verdict;
  record.length = length;
  record.pivots = pivots;
  record.cut = cut;
  record.note = note;
  c.journal->append(record);
}

std::string format_seconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", seconds);
  return buffer;
}

void accumulate(checker::IncrementalStats& into, const checker::IncrementalStats& from) {
  into.segments_pushed += from.segments_pushed;
  into.segments_popped += from.segments_popped;
  into.segments_reused += from.segments_reused;
  into.schemas_encoded += from.schemas_encoded;
}

// Marks a property's remaining pending leases dropped (its verdict is
// settled — counterexample, validation failure or exhausted budget — so the
// unvisited subtrees are moot). Active leases drain on their own.
void drop_pending_leases(Coord& c, std::size_t property) {
  for (Lease& lease : c.leases) {
    if (lease.property == property && lease.state == LeaseState::kPending) {
      lease.state = LeaseState::kDropped;
    }
  }
}

// Stamps the property's wall-clock when its last lease settles (caller
// holds the mutex).
void check_property_finished(Coord& c, std::size_t property) {
  PropMerge& prop = c.props[property];
  if (prop.finished) return;
  for (const Lease& lease : c.leases) {
    if (lease.property != property) continue;
    if (lease.state == LeaseState::kPending || lease.state == LeaseState::kActive) return;
  }
  prop.finished = true;
  prop.seconds = c.watch->seconds();
  bump(c, &checker::ProgressCounters::properties_done);
}

bool run_complete(const Coord& c) {
  // An in-flight spot check can still revoke the record that "finished" the
  // run (a forged sat stops its property the moment it merges); declaring
  // completion under it would race the revocation and ship a lie.
  if (c.spot_inflight > 0) return false;
  for (const Lease& lease : c.leases) {
    if (lease.state == LeaseState::kPending || lease.state == LeaseState::kActive) {
      return false;
    }
  }
  return true;
}

bool task_covers(const checker::SubtreeTask& task, const std::vector<int>& unlock_order) {
  if (task.include_extensions) {
    return unlock_order.size() >= task.prefix.size() &&
           std::equal(task.prefix.begin(), task.prefix.end(), unlock_order.begin());
  }
  return unlock_order == task.prefix;
}

// True iff a recorded subtree cut proves the whole lease moot: every schema
// under the task extends task.prefix, so a cut that is a prefix of
// task.prefix refutes all of them (a *longer* cut only covers part of the
// subtree and is handled by the worker's local skip instead).
bool cut_covers_task(const std::vector<int>& cut, const checker::SubtreeTask& task) {
  return cut.size() <= task.prefix.size() &&
         std::equal(cut.begin(), cut.end(), task.prefix.begin());
}

// Folds one subtree cut into the coordinator (caller holds the mutex).
// Returns true iff the cut is new. The cut itself is not journaled here —
// it rides on the unsat record of the schema that produced it — but every
// still-pending lease it fully covers is settled without ever being
// granted: the subtree is proven unsat wholesale.
bool fold_cut(Coord& c, std::size_t p, std::size_t q, std::vector<int> prefix) {
  std::vector<std::vector<int>>& cuts = c.cuts_by_pq[{p, q}];
  for (const std::vector<int>& existing : cuts) {
    if (existing == prefix) return false;
  }
  for (Lease& lease : c.leases) {
    if (lease.property != p || lease.query != q) continue;
    if (lease.state != LeaseState::kPending) continue;
    if (!cut_covers_task(prefix, lease.task)) continue;
    lease.state = LeaseState::kDone;
  }
  check_property_finished(c, p);
  cuts.push_back(std::move(prefix));
  return true;
}

// Applies one settled verdict to the merge state (caller holds the mutex).
// `resumed` distinguishes journal replay from live records; `origin` is the
// reporting connection's serial (-1: resume replay or in-process solve) and
// feeds the revocation log while spot-checking is armed. Returns false iff
// the cursor was already settled (duplicate after a reassignment).
bool apply_record(Coord& c, std::size_t p, std::size_t q, const checker::Schema& schema,
                  const std::string& cursor, const std::string& verdict, std::int64_t length,
                  std::int64_t pivots, std::int64_t cut, std::int64_t fast_ops,
                  std::int64_t big_ops, std::int64_t retries, const std::string& note,
                  bool resumed, bool journal_this, int origin = -1) {
  const std::vector<spec::Property>& properties = *c.properties;
  PropMerge& settled_prop = c.props[p];
  // A settled property wants no more verdicts: in-flight records from a
  // worker that has not yet seen its abandon frame are dropped, keeping the
  // counters identical to an in-process run that stopped enumerating there.
  if (settled_prop.stopped || settled_prop.budget_exhausted) return false;
  const std::string key = checker::ResumeState::key(properties[p].name, cursor);
  if (!c.settled.emplace(key, verdict).second) return false;
  c.settled_by_pq[{p, q}].emplace_back(schema.unlock_order, cursor);
  if (origin >= 0 && c.options->spot_check_rate > 0.0) {
    c.applied_by_origin[origin].push_back(
        {p, q, key, cursor, verdict, length, pivots, fast_ops, big_ops, retries});
  }
  PropMerge& prop = c.props[p];
  ++prop.enumerated;
  bump(c, &checker::ProgressCounters::enumerated);
  prop.retries += retries;
  if (resumed) {
    ++prop.resumed;
    bump(c, &checker::ProgressCounters::resumed);
  }
  if (verdict == "pruned") {
    ++prop.pruned;
    bump(c, &checker::ProgressCounters::pruned);
    if (c.check.certify) prop.pruned_schemas.push_back({q, schema});
  } else if (verdict == "unsat" || verdict == "sat") {
    ++prop.checked;
    bump(c, &checker::ProgressCounters::solved);
    prop.total_length += length;
    prop.pivots += pivots;
    prop.rational_fast_ops += fast_ops;
    prop.rational_big_ops += big_ops;
  } else {  // "unknown"
    ++prop.unknown;
    bump(c, &checker::ProgressCounters::unknown);
    if (prop.degrade_note.empty()) {
      prop.degrade_note = resumed ? "schema degraded to unknown (resumed): " + note
                                  : "schema degraded to unknown: " + note;
    }
  }
  if (journal_this) {
    journal_append(c, properties[p].name, cursor, verdict.c_str(), length, pivots, note, cut);
  }
  // The schema budget is per property, exactly like an in-process run.
  if (!prop.budget_exhausted && !prop.stopped &&
      prop.enumerated >= c.check.enumeration.max_schemas) {
    prop.budget_exhausted = true;
    drop_pending_leases(c, p);
    check_property_finished(c, p);
  }
  return true;
}

// --- verdict spot-checking --------------------------------------------------

/// Deterministic content-based sampling: the same (cursor, seed) pair is
/// always sampled or never, independent of arrival order, so a lying worker
/// cannot learn which of its records escape scrutiny by replaying the run.
/// Sat claims are always re-checked — a single forged witness flips the
/// headline verdict.
bool spot_sampled(const Coord& c, const std::string& cursor, const std::string& verdict) {
  const double rate = c.options->spot_check_rate;
  if (rate <= 0.0) return false;
  if (verdict == "unknown") return false;  // inconclusive either way
  if (verdict == "sat" || rate >= 1.0) return true;
  std::uint64_t h = 1469598103934665603ull ^ c.options->spot_check_seed;
  for (const char ch : cursor) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
}

/// Re-solves one reported schema in-process and compares. Returns an empty
/// string on agreement (or an inconclusive re-solve — honest watchdog
/// nondeterminism must not cost anyone a connection), else a description of
/// the disagreement. Call WITHOUT the coordinator mutex: the solve can take
/// as long as any schema takes.
std::string spot_disagreement(Coord& c, std::size_t p, std::size_t q,
                              const checker::Schema& schema, const std::string& verdict) {
  std::lock_guard<std::mutex> solve_lock(c.solve_mutex);
  const checker::QueryCone* cone = inline_cone_for(c, p, q);
  if (verdict == "pruned") {
    if (cone == nullptr) return "pruned a schema with property-directed pruning disabled";
    return cone->schema_feasible(schema) ? "pruned a cone-feasible schema" : std::string();
  }
  if (cone != nullptr && !cone->schema_feasible(schema)) {
    return "solved ('" + verdict + "') a schema the coordinator's cone statically prunes";
  }
  const checker::UnitOutcome outcome =
      inline_solver_for(c, p).solve(q, schema, cone, inline_remaining(c));
  if (outcome.kind == checker::UnitOutcome::Kind::kUnsat && verdict == "sat") {
    return "reported sat where the coordinator re-solves unsat";
  }
  if (outcome.kind == checker::UnitOutcome::Kind::kSat && verdict == "unsat") {
    return "reported unsat where the coordinator re-solves sat";
  }
  return std::string();
}

/// A spot check disagreed: nothing `origin` ever reported can be trusted.
/// Bans the label, reverses every merge contribution of that origin
/// (journaling compensating "revoked" records so --resume re-solves them),
/// and re-pends every lease the connection touched so honest workers — or
/// the coordinator itself, once the fleet is exhausted — re-solve the lot.
/// Caller holds the mutex.
void revoke_origin(Coord& c, int origin, const std::string& label,
                   const std::unordered_set<std::int64_t>& lease_history, std::size_t p_hint,
                   const std::string& cursor, const std::string& why) {
  ++c.stats.spot_check_failures;
  ++c.props[p_hint].spot_failures;
  penalize(c, label, kSpotFailPenalty);
  if (c.props[p_hint].disagreement.empty()) {
    c.props[p_hint].disagreement = "worker_disagreement: worker '" + label + "' " + why +
                                   " at cursor " + cursor +
                                   "; its records were revoked and re-solved";
  }
  const std::vector<spec::Property>& properties = *c.properties;
  std::unordered_set<std::size_t> touched;
  const auto it = c.applied_by_origin.find(origin);
  if (it != c.applied_by_origin.end()) {
    for (const AppliedRecord& rec : it->second) {
      if (c.settled.erase(rec.key) == 0) continue;
      auto& cursors = c.settled_by_pq[{rec.p, rec.q}];
      for (auto cit = cursors.begin(); cit != cursors.end(); ++cit) {
        if (cit->second == rec.cursor) {
          cursors.erase(cit);
          break;
        }
      }
      PropMerge& prop = c.props[rec.p];
      --prop.enumerated;
      bump(c, &checker::ProgressCounters::enumerated, -1);
      prop.retries -= rec.retries;
      if (rec.verdict == "pruned") {
        --prop.pruned;
        bump(c, &checker::ProgressCounters::pruned, -1);
      } else if (rec.verdict == "unsat" || rec.verdict == "sat") {
        --prop.checked;
        bump(c, &checker::ProgressCounters::solved, -1);
        prop.total_length -= rec.length;
        prop.pivots -= rec.pivots;
        prop.rational_fast_ops -= rec.fast_ops;
        prop.rational_big_ops -= rec.big_ops;
      } else {
        --prop.unknown;
        bump(c, &checker::ProgressCounters::unknown, -1);
      }
      if (rec.verdict == "sat" && prop.sat_origin == origin) {
        // The revoked worker's witness was what stopped this property;
        // un-stop it so coverage completes honestly.
        prop.stopped = false;
        prop.counterexample.reset();
        prop.error_note.clear();
        prop.sat_origin = -1;
      }
      journal_append(c, properties[rec.p].name, rec.cursor, "revoked");
      touched.insert(rec.p);
    }
    c.applied_by_origin.erase(it);
  }
  for (const std::int64_t id : lease_history) {
    Lease& lease = c.leases[static_cast<std::size_t>(id)];
    if (lease.state == LeaseState::kActive || lease.state == LeaseState::kDone) {
      lease.state = LeaseState::kPending;
      ++c.stats.leases_reassigned;
    }
    touched.insert(lease.property);
  }
  for (const std::size_t p : touched) {
    PropMerge& prop = c.props[p];
    if (prop.budget_exhausted && !prop.stopped &&
        prop.enumerated < c.check.enumeration.max_schemas) {
      prop.budget_exhausted = false;
    }
    if (!prop.stopped && !prop.budget_exhausted) {
      for (Lease& lease : c.leases) {
        if (lease.property == p && lease.state == LeaseState::kDropped) {
          lease.state = LeaseState::kPending;
        }
      }
    }
    prop.finished = false;
    check_property_finished(c, p);
  }
}

// One connection's server side; runs on its own thread. `Coord` outlives
// every handler (they are joined before serve_fd returns).
void handle_connection(Coord& c, int fd) {
  Conn conn(fd, /*subject_to_chaos=*/true);
  cert::Json hello;
  if (conn.recv(&hello, 10'000) != FrameStatus::kOk) return;
  bool peer_learn = false;
  std::string label = "worker";
  try {
    if (hello.at("type").as_string() != "hello") return;
    const cert::Json* protocol = hello.find("protocol");
    if (protocol == nullptr || protocol->as_int() != kDistProtocolVersion) {
      conn.send(cert::Json::Object{
          {"type", "shutdown"},
          {"reason", "protocol mismatch (coordinator speaks " +
                         std::to_string(kDistProtocolVersion) + ")"}});
      return;
    }
    if (const cert::Json* label_field = hello.find("label")) {
      if (label_field->kind() == cert::Json::Kind::kString &&
          !label_field->as_string().empty()) {
        label = label_field->as_string();
      }
    }
    // Feature negotiation: absent/empty means a pre-upgrade worker, which
    // simply never sees a learn frame (it still solves, without lemmas).
    if (const cert::Json* features = hello.find("features")) {
      for (const cert::Json& feature : features->as_array()) {
        if (feature.kind() == cert::Json::Kind::kString &&
            feature.as_string() == "learn") {
          peer_learn = true;
        }
      }
    }
  } catch (const std::exception&) {
    return;  // mistyped hello fields: not a worker
  }
  {
    // Health gate: a banned or cooling-down label is refused before any
    // lease; a label whose score crossed the quarantine threshold starts
    // (or escalates) its cool-down here. Rejections carry a reason so the
    // worker exits with a message instead of reconnect-spinning.
    std::lock_guard<std::mutex> lock(c.mutex);
    WorkerHealth& health = c.health[label];
    ++health.joins;
    if (health.joins > kFreeRejoins) penalize(c, label, kChurnPenalty);
    std::string reason;
    if (health.banned) {
      reason = "worker '" + label + "' is banned for this run (health score " +
               format_seconds(health.score) + ")";
    } else if (Clock::now() < health.quarantined_until) {
      reason = "worker '" + label + "' is quarantined; retry after the cool-down";
    } else if (health.score >= kQuarantineScore) {
      ++health.quarantines;
      if (health.quarantines >= kQuarantinesBeforeBan) {
        health.banned = true;
        ++c.stats.workers_banned;
        reason = "worker '" + label + "' is banned for this run (quarantine ladder exhausted)";
      } else {
        ++c.stats.workers_quarantined;
        const double cool_seconds =
            c.options->lease_timeout_seconds * static_cast<double>(1 << (health.quarantines - 1));
        health.quarantined_until =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(cool_seconds));
        // Residual suspicion: the label may return after the cool-down, but
        // the next offense re-quarantines (longer), and the ladder ends in
        // a ban.
        health.score = kQuarantineScore / 2;
        reason = "worker '" + label + "' is quarantined for " + format_seconds(cool_seconds) +
                 "s (health score crossed " + format_seconds(kQuarantineScore) + ")";
      }
    }
    if (!reason.empty()) {
      conn.send(cert::Json::Object{{"type", "shutdown"}, {"reason", reason}});
      return;
    }
  }
  if (!conn.send(c.welcome)) return;
  const bool learn = c.learn && peer_learn;
  int origin = -1;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    origin = c.next_origin++;
    ++c.stats.workers_joined;
    c.open_conns.push_back({&conn, learn});
    bump(c, &checker::ProgressCounters::workers);
  }
  const std::vector<spec::Property>& properties = *c.properties;

  std::int64_t current = -1;  // lease index held by this worker
  /// Every lease ever granted on THIS connection: the trust set a record or
  /// sat frame must cite from. A late record for an expropriated lease of
  /// our own is honest (and deduplicated); a record citing anyone else's
  /// lease is hostile.
  std::unordered_set<std::int64_t> lease_history;
  // Lease id the last "abandon" frame named (one per lease is enough — the
  // worker reacts after its next streamed record).
  std::int64_t abandon_sent_for = -2;
  auto last_activity = Clock::now();
  bool clean = false;

  const auto release_current = [&] {
    if (current < 0) return;
    Lease& lease = c.leases[static_cast<std::size_t>(current)];
    if (lease.state == LeaseState::kActive) {
      lease.state = LeaseState::kPending;
      ++c.stats.leases_reassigned;
    }
    current = -1;
  };

  // A protocol violation (hostile or malformed frame) costs health points on
  // top of the connection; EOFs, torn frames and timeouts are deaths, not
  // hostility. Inline under the mutex, wrapped for the unlocked break paths.
  const auto mark_hostile_locked = [&] {
    ++c.stats.hostile_frames;
    penalize(c, label, kHostilePenalty);
  };
  const auto punish_violation = [&] {
    std::lock_guard<std::mutex> lock(c.mutex);
    mark_hostile_locked();
  };

  // The frame codec rejects garbage bytes, but a syntactically valid JSON
  // frame can still carry missing or mistyped fields (worker bug, version
  // skew, hostile peer); the throwing Json accessors below must never
  // escape this thread — that would std::terminate the whole coordinator.
  // A throw is a protocol violation: drop the connection, release the
  // lease, exactly like the explicit `break` paths.
  try {
    for (;;) {
      cert::Json msg;
      const FrameStatus status = conn.recv(&msg, 250);
      if (status == FrameStatus::kTimeout) {
        const double silent =
            std::chrono::duration<double>(Clock::now() - last_activity).count();
        std::lock_guard<std::mutex> lock(c.mutex);
        if (silent > c.options->lease_timeout_seconds) {
          // Dead or wedged worker. Expropriating a lease feeds the label's
          // health: a chronically timing-out worker ends up quarantined.
          if (current >= 0) {
            ++c.stats.lease_timeouts;
            penalize(c, label, kTimeoutPenalty);
          }
          break;
        }
        if (c.closing && current < 0) {
          conn.send(cert::Json::Object{{"type", "shutdown"}, {"reason", "run over"}});
          clean = true;
          break;
        }
        continue;
      }
      if (status == FrameStatus::kBadMagic || status == FrameStatus::kOversized ||
          status == FrameStatus::kError) {
        punish_violation();  // malformed frame, not a death
        break;
      }
      if (status != FrameStatus::kOk) break;  // EOF or torn frame
      last_activity = Clock::now();
      const cert::Json* type_field = msg.find("type");
      if (type_field == nullptr) {
        punish_violation();
        break;
      }
      const std::string& type = type_field->as_string();

      if (type == "heartbeat") continue;

      if (type == "next") {
        cert::Json reply;
        {
          std::lock_guard<std::mutex> lock(c.mutex);
          release_current();  // a worker asking again abandoned any holdover
          std::int64_t grant = -1;
          bool work_left = false;
          if (!c.closing) {
            // Fair-share grant: with several live properties queued (a DAG
            // pipeline multiplexing property-queries onto one fleet), first-fit
            // would drain property 0's leases before touching property 1,
            // serializing what the scheduler meant to interleave. Grant the
            // pending lease whose property has the fewest workers on it; ties
            // fall to the lowest lease index, which is exactly the old
            // first-fit order within one property.
            std::vector<std::size_t> active_by_prop(c.props.size(), 0);
            for (const Lease& lease : c.leases) {
              if (lease.state == LeaseState::kActive) ++active_by_prop[lease.property];
            }
            std::size_t grant_active = 0;
            for (std::size_t i = 0; i < c.leases.size(); ++i) {
              Lease& lease = c.leases[i];
              if (lease.state == LeaseState::kActive) work_left = true;
              if (lease.state != LeaseState::kPending) continue;
              work_left = true;
              const PropMerge& prop = c.props[lease.property];
              if (prop.stopped || prop.budget_exhausted) continue;
              // A lease returned to pending (expropriation) may have been
              // covered by a subtree cut since: settle it here instead of
              // granting doomed work.
              if (c.learn) {
                const auto cit = c.cuts_by_pq.find({lease.property, lease.query});
                if (cit != c.cuts_by_pq.end()) {
                  bool covered = false;
                  for (const std::vector<int>& cut : cit->second) {
                    if (cut_covers_task(cut, lease.task)) {
                      covered = true;
                      break;
                    }
                  }
                  if (covered) {
                    lease.state = LeaseState::kDone;
                    check_property_finished(c, lease.property);
                    continue;
                  }
                }
              }
              if (grant < 0 || active_by_prop[lease.property] < grant_active) {
                grant = static_cast<std::int64_t>(i);
                grant_active = active_by_prop[lease.property];
                if (grant_active == 0) break;  // an idle property: can't do better
              }
            }
          }
          if (grant >= 0) {
            Lease& lease = c.leases[static_cast<std::size_t>(grant)];
            lease.state = LeaseState::kActive;
            ++c.stats.leases_granted;
            current = grant;
            lease_history.insert(grant);
            abandon_sent_for = -2;  // a regranted lease may need its own abandon
            cert::Json::Array prefix;
            for (const int g : lease.task.prefix) prefix.push_back(g);
            // Skip list: every settled cursor inside this subtree (resume
            // replay and partial work of a previous holder).
            cert::Json::Array skip;
            const auto it = c.settled_by_pq.find({lease.property, lease.query});
            if (it != c.settled_by_pq.end()) {
              for (const auto& [unlock_order, cursor] : it->second) {
                if (task_covers(lease.task, unlock_order)) skip.push_back(cursor);
              }
            }
            reply = cert::Json::Object{{"type", "lease"},
                                       {"lease", grant},
                                       {"property", static_cast<std::int64_t>(lease.property)},
                                       {"query", static_cast<std::int64_t>(lease.query)},
                                       {"prefix", std::move(prefix)},
                                       {"extensions", lease.task.include_extensions},
                                       {"skip", std::move(skip)}};
            // Learning payload: everything known about this (property, query)
            // rides along so a late-joining worker starts with the fleet's
            // accumulated cuts and lemmas.
            if (learn) {
              const std::pair<std::size_t, std::size_t> pq{lease.property, lease.query};
              cert::Json::Array cuts;
              if (const auto cit = c.cuts_by_pq.find(pq); cit != c.cuts_by_pq.end()) {
                for (const std::vector<int>& cut : cit->second) {
                  cert::Json::Array cut_prefix;
                  for (const int g : cut) cut_prefix.push_back(g);
                  cuts.push_back(cert::Json::Object{
                      {"q", static_cast<std::int64_t>(lease.query)},
                      {"prefix", std::move(cut_prefix)}});
                }
              }
              cert::Json::Array lemmas;
              if (const auto lit = c.lemmas_by_pq.find(pq); lit != c.lemmas_by_pq.end()) {
                for (const std::vector<std::string>& premises : lit->second) {
                  cert::Json::Array strings;
                  for (const std::string& premise : premises) strings.push_back(premise);
                  lemmas.push_back(cert::Json::Object{
                      {"q", static_cast<std::int64_t>(lease.query)},
                      {"premises", std::move(strings)}});
                }
              }
              if (!cuts.empty()) reply.set("cuts", std::move(cuts));
              if (!lemmas.empty()) reply.set("lemmas", std::move(lemmas));
            }
          } else if (work_left) {
            reply = cert::Json::Object{{"type", "wait"}, {"ms", 300}};
          } else {
            reply = cert::Json::Object{{"type", "shutdown"}, {"reason", "run over"}};
            clean = true;
          }
        }
        if (!conn.send(reply)) break;
        if (clean) break;
        continue;
      }

      if (type == "record") {
        std::size_t q = 0;
        checker::Schema schema;
        const std::string& cursor = msg.at("cursor").as_string();
        const auto p = static_cast<std::size_t>(msg.at("property").as_int());
        if (p >= c.props.size() || !checker::parse_schema_cursor(cursor, &q, &schema) ||
            q >= properties[p].queries.size()) {
          punish_violation();
          break;
        }
        const std::int64_t cited = msg.at("lease").as_int();
        const std::string verdict = msg.at("verdict").as_string();
        bool abandon = false;
        bool hostile = false;
        bool applied = false;
        {
          std::lock_guard<std::mutex> lock(c.mutex);
          // Trust gate: the frame must carry a known verdict, cite a lease
          // granted on THIS connection whose (property, query) match and
          // whose subtree covers the cursor, and must not contradict an
          // already-settled definitive verdict. (A late record for our own
          // expropriated lease is honest — dedup absorbs it.)
          const Lease* cited_lease =
              cited >= 0 && cited < static_cast<std::int64_t>(c.leases.size()) &&
                      lease_history.count(cited) > 0
                  ? &c.leases[static_cast<std::size_t>(cited)]
                  : nullptr;
          if (verdict != "pruned" && verdict != "unsat" && verdict != "unknown") {
            hostile = true;
          } else if (cited_lease == nullptr || cited_lease->property != p ||
                     cited_lease->query != q ||
                     !task_covers(cited_lease->task, schema.unlock_order)) {
            hostile = true;
          } else if (const auto settled_it =
                         c.settled.find(checker::ResumeState::key(properties[p].name, cursor));
                     settled_it != c.settled.end() && settled_it->second != verdict &&
                     definitive_verdict(settled_it->second) && definitive_verdict(verdict)) {
            hostile = true;  // conflicting duplicate: someone is lying
          }
          if (hostile) {
            mark_hostile_locked();
          } else {
            // "fast"/"big" are read tolerantly: pruned/unknown records (and
            // records from pre-upgrade workers) simply omit them.
            const cert::Json* fast_field = msg.find("fast");
            const cert::Json* big_field = msg.find("big");
            const cert::Json* cut_field = msg.find("cut");
            const std::int64_t cut = cut_field != nullptr ? cut_field->as_int() : -1;
            applied = apply_record(c, p, q, schema, cursor, verdict, msg.at("length").as_int(),
                                   msg.at("pivots").as_int(), cut,
                                   fast_field != nullptr ? fast_field->as_int() : 0,
                                   big_field != nullptr ? big_field->as_int() : 0,
                                   msg.at("retries").as_int(), msg.at("note").as_string(),
                                   /*resumed=*/false,
                                   /*journal_this=*/true, origin);
            if (applied && c.check.certify && verdict == "unsat") {
              checker::SchemaEvidence item;
              item.query_index = q;
              item.schema = schema;
              item.sat = false;
              if (const cert::Json* proof = msg.find("proof")) {
                item.proof = std::shared_ptr<const smt::proof::Node>(
                    cert::proof_from_json(*proof).release());
              }
              c.props[p].evidence.push_back(std::move(item));
            }
            // A record carrying a subtree cut proves every schema extending
            // the chain prefix unsat: fold it (settling covered pending
            // leases) and broadcast a fresh cut to the other learn-capable
            // workers so they skip the doomed subtrees too.
            if (learn && verdict == "unsat" && cut >= 0 &&
                cut <= static_cast<std::int64_t>(schema.unlock_order.size())) {
              std::vector<int> prefix(schema.unlock_order.begin(),
                                      schema.unlock_order.begin() + cut);
              if (fold_cut(c, p, q, prefix)) {
                cert::Json::Array prefix_json;
                for (int g : prefix) prefix_json.push_back(static_cast<std::int64_t>(g));
                const cert::Json frame = cert::Json::Object{
                    {"type", "learn"},
                    {"p", static_cast<std::int64_t>(p)},
                    {"cuts",
                     cert::Json::Array{cert::Json::Object{
                         {"q", static_cast<std::int64_t>(q)},
                         {"prefix", std::move(prefix_json)}}}}};
                for (const ConnInfo& info : c.open_conns) {
                  if (info.learn && info.conn != &conn) info.conn->send(frame);
                }
              }
            }
            // Tell the worker to stop solving a subtree nobody wants: its
            // lease was expropriated, or the property is already settled
            // (first witness, exhausted budget).
            abandon = cited != current || c.props[p].stopped || c.props[p].budget_exhausted;
          }
        }
        if (hostile) break;
        if (applied && spot_sampled(c, cursor, verdict)) {
          {
            std::lock_guard<std::mutex> lock(c.mutex);
            ++c.stats.spot_checks;
            ++c.props[p].spot_checks;
            ++c.spot_inflight;  // holds run_complete open until the verdict
          }
          // Re-solve WITHOUT the coordinator mutex — the run keeps merging
          // other workers' records while this one is audited.
          const std::string why = spot_disagreement(c, p, q, schema, verdict);
          bool lying = false;
          {
            std::lock_guard<std::mutex> lock(c.mutex);
            --c.spot_inflight;
            lying = !why.empty();
            if (lying) revoke_origin(c, origin, label, lease_history, p, cursor, why);
          }
          if (lying) break;  // the lying connection dies with its records
        }
        if (abandon && abandon_sent_for != cited) {
          abandon_sent_for = cited;
          if (!conn.send(cert::Json::Object{{"type", "abandon"}, {"lease", cited}})) break;
        }
        continue;
      }

      if (type == "sat") {
        std::size_t q = 0;
        checker::Schema schema;
        const std::string& cursor = msg.at("cursor").as_string();
        const auto p = static_cast<std::size_t>(msg.at("property").as_int());
        if (p >= c.props.size() || !checker::parse_schema_cursor(cursor, &q, &schema) ||
            q >= properties[p].queries.size()) {
          punish_violation();
          break;
        }
        const std::int64_t cited = msg.at("lease").as_int();
        bool hostile = false;
        bool applied = false;
        {
          std::lock_guard<std::mutex> lock(c.mutex);
          // Same trust gate as record frames. A sat frame is the single
          // highest-leverage lie a worker can tell — it used to be applied
          // unconditionally; now a forged witness for a never-granted or
          // foreign lease costs the connection instead of the verdict.
          const Lease* cited_lease =
              cited >= 0 && cited < static_cast<std::int64_t>(c.leases.size()) &&
                      lease_history.count(cited) > 0
                  ? &c.leases[static_cast<std::size_t>(cited)]
                  : nullptr;
          if (cited_lease == nullptr || cited_lease->property != p ||
              cited_lease->query != q ||
              !task_covers(cited_lease->task, schema.unlock_order)) {
            hostile = true;
          } else if (const auto settled_it =
                         c.settled.find(checker::ResumeState::key(properties[p].name, cursor));
                     settled_it != c.settled.end() && settled_it->second != "sat" &&
                     definitive_verdict(settled_it->second)) {
            hostile = true;  // this cursor already settled definitively non-sat
          }
          if (hostile) {
            mark_hostile_locked();
          } else {
            const cert::Json* sat_fast = msg.find("fast");
            const cert::Json* sat_big = msg.find("big");
            applied = apply_record(c, p, q, schema, cursor, "sat", msg.at("length").as_int(),
                                   msg.at("pivots").as_int(), /*cut=*/-1,
                                   sat_fast != nullptr ? sat_fast->as_int() : 0,
                                   sat_big != nullptr ? sat_big->as_int() : 0,
                                   msg.at("retries").as_int(), std::string(),
                                   /*resumed=*/false, /*journal_this=*/true, origin);
            if (applied) {
              PropMerge& prop = c.props[p];
              prop.sat_origin = origin;
              if (c.check.certify) {
                checker::SchemaEvidence item;
                item.query_index = q;
                item.schema = schema;
                item.sat = true;
                if (const cert::Json* model = msg.find("model")) {
                  item.model =
                      std::make_shared<const std::vector<std::pair<std::string, BigInt>>>(
                          model_values_from_json(*model));
                }
                prop.evidence.push_back(std::move(item));
              }
              const std::string& validation_error = msg.at("validation_error").as_string();
              if (!validation_error.empty()) {
                if (prop.error_note.empty()) {
                  prop.error_note =
                      "internal: counterexample failed replay validation: " + validation_error;
                }
              } else if (const cert::Json* cex = msg.find("counterexample");
                         cex != nullptr && !prop.counterexample) {
                prop.counterexample = counterexample_from_json(*cex);
              }
              prop.stopped = true;  // first witness wins; stop leasing this property
              drop_pending_leases(c, p);
              check_property_finished(c, p);
            }
          }
        }
        if (hostile) break;
        if (applied && spot_sampled(c, cursor, "sat")) {
          {
            std::lock_guard<std::mutex> lock(c.mutex);
            ++c.stats.spot_checks;
            ++c.props[p].spot_checks;
            ++c.spot_inflight;  // a forged sat must not win the completion race
          }
          const std::string why = spot_disagreement(c, p, q, schema, "sat");
          bool lying = false;
          {
            std::lock_guard<std::mutex> lock(c.mutex);
            --c.spot_inflight;
            lying = !why.empty();
            if (lying) revoke_origin(c, origin, label, lease_history, p, cursor, why);
          }
          if (lying) break;
        }
        continue;
      }

      if (type == "learn") {
        // Cross-schema learning facts from this worker. Fold them (deduped)
        // into the coordinator's pools, journal new cuts, settle pending
        // leases a cut fully covers, and broadcast fresh facts to every
        // other learn-capable worker so the whole fleet abandons doomed
        // subtrees. Silently ignored when this run does not learn.
        if (!learn) continue;
        const auto p = static_cast<std::size_t>(msg.at("p").as_int());
        if (p >= c.props.size()) {
          punish_violation();
          break;
        }
        cert::Json::Array fresh_cuts;
        cert::Json::Array fresh_lemmas;
        std::lock_guard<std::mutex> lock(c.mutex);
        if (const cert::Json* cuts = msg.find("cuts")) {
          for (const cert::Json& entry : cuts->as_array()) {
            const auto q = static_cast<std::size_t>(entry.at("q").as_int());
            if (q >= properties[p].queries.size()) continue;
            std::vector<int> prefix;
            for (const cert::Json& g : entry.at("prefix").as_array()) {
              prefix.push_back(static_cast<int>(g.as_int()));
            }
            if (fold_cut(c, p, q, prefix)) fresh_cuts.push_back(entry);
          }
        }
        if (const cert::Json* lemmas = msg.find("lemmas")) {
          for (const cert::Json& entry : lemmas->as_array()) {
            const auto q = static_cast<std::size_t>(entry.at("q").as_int());
            if (q >= properties[p].queries.size()) continue;
            std::vector<std::string> premises;
            std::string key = std::to_string(p) + '|' + std::to_string(q);
            for (const cert::Json& premise : entry.at("premises").as_array()) {
              premises.push_back(premise.as_string());
              key += '\x1f';
              key += premises.back();
            }
            if (premises.empty() || !c.lemma_keys.insert(key).second) continue;
            c.lemmas_by_pq[{p, q}].push_back(std::move(premises));
            fresh_lemmas.push_back(entry);
          }
        }
        if (!fresh_cuts.empty() || !fresh_lemmas.empty()) {
          cert::Json frame = cert::Json::Object{
              {"type", "learn"}, {"p", static_cast<std::int64_t>(p)}};
          if (!fresh_cuts.empty()) frame.set("cuts", std::move(fresh_cuts));
          if (!fresh_lemmas.empty()) frame.set("lemmas", std::move(fresh_lemmas));
          for (const ConnInfo& info : c.open_conns) {
            if (info.learn && info.conn != &conn) info.conn->send(frame);
          }
        }
        continue;
      }

      if (type == "lease_done") {
        const std::int64_t id = msg.at("lease").as_int();
        std::lock_guard<std::mutex> lock(c.mutex);
        if (id == current && id >= 0) {
          Lease& lease = c.leases[static_cast<std::size_t>(id)];
          if (lease.state == LeaseState::kActive) lease.state = LeaseState::kDone;
          if (const cert::Json* stats = msg.find("stats")) {
            checker::IncrementalStats delta;
            delta.segments_pushed = stats->at("segments_pushed").as_int();
            delta.segments_popped = stats->at("segments_popped").as_int();
            delta.segments_reused = stats->at("segments_reused").as_int();
            delta.schemas_encoded = stats->at("schemas_encoded").as_int();
            accumulate(c.props[lease.property].incremental, delta);
          }
          // Learning counters, read tolerantly (pre-upgrade workers omit
          // them). Cut counts only cover subtrees a worker enumerated past —
          // subtrees never granted thanks to a cut are not enumerated at
          // all, so the distributed count is a documented undercount.
          PropMerge& prop = c.props[lease.property];
          if (const cert::Json* cut = msg.find("cut")) {
            prop.cut += cut->as_int();
            bump(c, &checker::ProgressCounters::cut, cut->as_int());
          }
          if (const cert::Json* hits = msg.find("hits")) prop.lemma_hits += hits->as_int();
          if (const cert::Json* learned = msg.find("learned")) {
            prop.lemmas_learned += learned->as_int();
          }
          current = -1;
          check_property_finished(c, lease.property);
        }
        continue;
      }

      punish_violation();
      break;  // unknown message: protocol violation, drop the connection
    }
  } catch (const std::exception&) {
    // Malformed message from a peer that passed the handshake; fall through
    // to the cleanup below — this worker costs only its lease (plus health
    // points: malformed frames feed the quarantine ladder).
    punish_violation();
  }

  {
    std::lock_guard<std::mutex> lock(c.mutex);
    release_current();
    if (!clean) ++c.stats.workers_lost;
    const auto it = std::find_if(c.open_conns.begin(), c.open_conns.end(),
                                 [&](const ConnInfo& info) { return info.conn == &conn; });
    if (it != c.open_conns.end()) {
      c.open_conns.erase(it);
      bump(c, &checker::ProgressCounters::workers, -1);
    }
  }
  conn.close();
}

// Graceful degradation: claims ONE pending lease and solves it on the
// accept-loop thread, exactly like a worker would (same enumeration, cone
// pruning, solver and budget merging — apply_record dedups against anything
// already settled). Called only when the fleet is exhausted; one lease at a
// time so the loop re-checks for fresh connections, cancellation and the
// global timeout between subtrees. Returns false when nothing is grantable.
bool self_solve_one_lease(Coord& c) {
  std::int64_t grant = -1;
  std::size_t p = 0;
  std::size_t q = 0;
  checker::SubtreeTask task;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    for (std::size_t i = 0; i < c.leases.size(); ++i) {
      Lease& lease = c.leases[i];
      if (lease.state != LeaseState::kPending) continue;
      const PropMerge& prop = c.props[lease.property];
      if (prop.stopped || prop.budget_exhausted) continue;
      if (c.learn) {
        const auto cit = c.cuts_by_pq.find({lease.property, lease.query});
        if (cit != c.cuts_by_pq.end()) {
          bool covered = false;
          for (const std::vector<int>& cut : cit->second) {
            if (cut_covers_task(cut, lease.task)) {
              covered = true;
              break;
            }
          }
          if (covered) {
            lease.state = LeaseState::kDone;
            check_property_finished(c, lease.property);
            continue;
          }
        }
      }
      grant = static_cast<std::int64_t>(i);
      lease.state = LeaseState::kActive;
      ++c.stats.leases_granted;
      ++c.stats.leases_self_solved;
      p = lease.property;
      q = lease.query;
      task = lease.task;
      break;
    }
  }
  if (grant < 0) return false;
  const std::vector<spec::Property>& properties = *c.properties;
  bool bail = false;  // cancel/timeout/abort: the lease goes back to pending
  {
    std::lock_guard<std::mutex> solve_lock(c.solve_mutex);
    const checker::QueryCone* cone = inline_cone_for(c, p, q);
    checker::SchemaSolver& solver = inline_solver_for(c, p);
    const int cut_count = static_cast<int>(properties[p].queries[q].cuts.size());
    // The global schema budget is enforced as records merge, like workers.
    checker::EnumerationOptions enumeration = c.check.enumeration;
    enumeration.max_schemas = std::numeric_limits<std::int64_t>::max();
    enumerate_schemas_under(
        *c.analysis, task, cut_count, enumeration, [&](const checker::Schema& schema) {
          {
            std::lock_guard<std::mutex> lock(c.mutex);
            if (c.props[p].stopped || c.props[p].budget_exhausted) return false;
          }
          if (c.check.cancel != nullptr && c.check.cancel->load(std::memory_order_relaxed)) {
            bail = true;
            return false;
          }
          if (c.check.timeout_seconds > 0.0 && c.watch->seconds() > c.check.timeout_seconds) {
            bail = true;
            return false;
          }
          const std::string cursor = checker::schema_cursor(q, schema);
          if (cone != nullptr && !cone->schema_feasible(schema)) {
            std::lock_guard<std::mutex> lock(c.mutex);
            if (apply_record(c, p, q, schema, cursor, "pruned", 0, 0, /*cut=*/-1, 0, 0, 0,
                             std::string(), /*resumed=*/false, /*journal_this=*/true) &&
                c.check.certify) {
              // apply_record already filed the pruned schema for certify.
            }
            return true;
          }
          {
            // Skip without counting anything a worker already settled.
            std::lock_guard<std::mutex> lock(c.mutex);
            if (c.settled.count(checker::ResumeState::key(properties[p].name, cursor)) > 0) {
              return true;
            }
          }
          checker::UnitOutcome outcome = solver.solve(q, schema, cone, inline_remaining(c));
          std::lock_guard<std::mutex> lock(c.mutex);
          switch (outcome.kind) {
            case checker::UnitOutcome::Kind::kAborted:
            case checker::UnitOutcome::Kind::kInterrupted:
              bail = true;
              return false;
            case checker::UnitOutcome::Kind::kUnknown:
              apply_record(c, p, q, schema, cursor, "unknown", 0, 0, /*cut=*/-1, 0, 0,
                           outcome.retries, outcome.note, /*resumed=*/false,
                           /*journal_this=*/true);
              return true;
            case checker::UnitOutcome::Kind::kUnsat:
              if (apply_record(c, p, q, schema, cursor, "unsat", outcome.length,
                               outcome.pivots, /*cut=*/-1, outcome.rational_fast_ops,
                               outcome.rational_big_ops, outcome.retries, std::string(),
                               /*resumed=*/false, /*journal_this=*/true) &&
                  c.check.certify) {
                checker::SchemaEvidence item;
                item.query_index = q;
                item.schema = schema;
                item.sat = false;
                item.proof = outcome.proof;
                c.props[p].evidence.push_back(std::move(item));
              }
              return true;
            case checker::UnitOutcome::Kind::kSat:
              if (apply_record(c, p, q, schema, cursor, "sat", outcome.length, outcome.pivots,
                               /*cut=*/-1, outcome.rational_fast_ops, outcome.rational_big_ops,
                               outcome.retries, std::string(), /*resumed=*/false,
                               /*journal_this=*/true)) {
                PropMerge& prop = c.props[p];
                prop.sat_origin = -1;
                if (c.check.certify) {
                  checker::SchemaEvidence item;
                  item.query_index = q;
                  item.schema = schema;
                  item.sat = true;
                  item.model = outcome.model;
                  prop.evidence.push_back(std::move(item));
                }
                if (!outcome.validation_error.empty()) {
                  if (prop.error_note.empty()) {
                    prop.error_note = "internal: counterexample failed replay validation: " +
                                      outcome.validation_error;
                  }
                } else if (outcome.counterexample && !prop.counterexample) {
                  prop.counterexample = std::move(outcome.counterexample);
                }
                prop.stopped = true;
                drop_pending_leases(c, p);
                check_property_finished(c, p);
              }
              return false;  // the property is settled (or a dup raced us)
          }
          return true;
        });
  }
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    Lease& lease = c.leases[static_cast<std::size_t>(grant)];
    if (lease.state == LeaseState::kActive) {
      lease.state = bail ? LeaseState::kPending : LeaseState::kDone;
    }
    check_property_finished(c, lease.property);
  }
  return true;
}

}  // namespace

std::vector<checker::PropertyResult> serve_fd(int listen_fd, const std::string& model_text,
                                              const std::vector<PropertySpec>& specs,
                                              const DistOptions& options, DistStats* stats) {
  const Stopwatch watch;
  Coord c;
  c.options = &options;
  c.watch = &watch;
  c.check = options.check;
  if (c.check.certify) c.check.incremental = true;
  if (c.check.certify && !c.check.resume_path.empty()) {
    ::close(listen_fd);
    throw InvalidArgument(
        "checker: resume is incompatible with certify (resumed schemas carry no proofs)");
  }
  if (c.check.certify && options.spot_check_rate > 0.0) {
    ::close(listen_fd);
    throw InvalidArgument(
        "dist: --spot-check-rate is redundant under --certify (the audit re-validates every "
        "verdict offline); drop one of the two");
  }

  const ta::ThresholdAutomaton ta = ta::parse_ta(model_text).one_round_reduction();
  const std::vector<spec::Property> properties = resolve_properties(ta, specs);
  c.properties = &properties;
  const std::string model_hash = checker::model_content_hash(ta);

  std::optional<checker::ResumeState> resume;
  if (!c.check.resume_path.empty()) {
    resume = checker::load_journal(c.check.resume_path);
    checker::require_resume_compatible(*resume, ta.name(), model_hash);
  }
  std::unique_ptr<checker::ProgressJournal> journal;
  if (!c.check.journal_path.empty()) {
    journal = std::make_unique<checker::ProgressJournal>(c.check.journal_path,
                                                         checker::JournalHeader(ta.name(), model_hash),
                                                         c.check.journal_flush_batch);
  }
  c.journal = journal.get();
  const bool copy_resumed =
      journal != nullptr && c.check.journal_path != c.check.resume_path;

  // Workers enumerate their subtrees without a schema cap — the budget is
  // global, enforced here as records merge (exactly like the in-process
  // pool, which strips max_schemas from per-task enumeration).
  checker::CheckOptions wire = c.check;
  wire.enumeration.max_schemas = std::numeric_limits<std::int64_t>::max();
  // Spot-checking disables cross-schema learning: a forged lemma or subtree
  // cut from an untrusted worker would poison honest workers in ways no
  // per-record re-solve can detect.
  c.learn = checker::lemmas_enabled(c.check) && options.spot_check_rate <= 0.0;
  c.welcome = cert::Json::Object{{"type", "welcome"},
                                 {"protocol", kDistProtocolVersion},
                                 {"model_hash", model_hash},
                                 {"model_text", model_text},
                                 {"properties", specs_to_json(specs)},
                                 {"options", options_to_json(wire)},
                                 {"lease_timeout", options.lease_timeout_seconds}};
  if (c.learn) c.welcome.set("features", cert::Json::Array{"learn"});

  // Lease planning: the same DFS chain-subtree partition the in-process
  // pool uses, deep enough that the expected fleet load-balances.
  const checker::GuardAnalysis analysis(ta);
  c.analysis = &analysis;
  std::vector<checker::SubtreeTask> tasks;
  const int want = std::max(1, options.expected_workers) * 4;
  for (int depth = 1;; ++depth) {
    tasks = checker::partition_subtrees(analysis, depth, c.check.enumeration);
    if (static_cast<int>(tasks.size()) >= want || depth >= analysis.guard_count()) break;
  }
  c.props.resize(properties.size());
  for (std::size_t p = 0; p < properties.size(); ++p) {
    for (std::size_t q = 0; q < properties[p].queries.size(); ++q) {
      for (const checker::SubtreeTask& task : tasks) {
        c.leases.push_back({p, q, task, LeaseState::kPending});
      }
    }
  }
  {
    // A budget of zero (or below) is exhausted before any schema settles.
    std::lock_guard<std::mutex> lock(c.mutex);
    for (std::size_t p = 0; p < properties.size(); ++p) {
      if (c.props[p].enumerated >= c.check.enumeration.max_schemas) {
        c.props[p].budget_exhausted = true;
        drop_pending_leases(c, p);
        check_property_finished(c, p);
      }
    }
  }

  // Resume replay: settle everything the journal already decided, so leases
  // ship it as skip lists and the statistics replay exactly like the
  // in-process resume path. Sat records are re-solved (no counterexample is
  // journaled), as in-process.
  if (resume) {
    std::unordered_map<std::string, std::size_t> by_name;
    for (std::size_t p = 0; p < properties.size(); ++p) by_name[properties[p].name] = p;
    std::lock_guard<std::mutex> lock(c.mutex);
    for (const auto& [key, record] : resume->settled) {
      if (record.verdict == "sat") continue;
      const auto it = by_name.find(record.property);
      if (it == by_name.end()) continue;
      std::size_t q = 0;
      checker::Schema schema;
      if (!checker::parse_schema_cursor(record.cursor, &q, &schema)) continue;
      if (q >= properties[it->second].queries.size()) continue;
      // Journal records carry no arithmetic counters; resumed schemas
      // contribute zero to the fast/big split (documented in result.h).
      apply_record(c, it->second, q, schema, record.cursor, record.verdict, record.length,
                   record.pivots, record.cut, /*fast_ops=*/0, /*big_ops=*/0, /*retries=*/0,
                   record.note, /*resumed=*/true, /*journal_this=*/copy_resumed);
      // A cut riding on a replayed unsat record re-enters the coordinator's
      // pool: covered leases settle before ever being granted, and the cut
      // ships inside lease grants like a live one.
      if (c.learn && record.verdict == "unsat" && record.cut >= 0 &&
          record.cut <= static_cast<std::int64_t>(schema.unlock_order.size())) {
        std::vector<int> prefix(schema.unlock_order.begin(),
                                schema.unlock_order.begin() + record.cut);
        fold_cut(c, it->second, q, std::move(prefix));
      }
    }
    for (std::size_t p = 0; p < properties.size(); ++p) check_property_finished(c, p);
  }

  // Accept loop: hand every connection to its own handler thread; watch for
  // completion, cancellation and the global timeout.
  std::vector<std::thread> handlers;
  bool force_close = false;
  bool fleet_was_missing = false;
  double fleet_missing_since = 0.0;
  for (;;) {
    bool degrade = false;
    {
      std::lock_guard<std::mutex> lock(c.mutex);
      if (run_complete(c)) {
        c.closing = true;
        break;
      }
      if (options.check.cancel != nullptr &&
          options.check.cancel->load(std::memory_order_relaxed)) {
        c.interrupted = true;
        c.closing = true;
        force_close = true;
        break;
      }
      if (options.check.timeout_seconds > 0.0 &&
          watch.seconds() > options.check.timeout_seconds) {
        c.timed_out = true;
        c.closing = true;
        force_close = true;
        break;
      }
      // Graceful degradation: once the fleet has existed and then vanished
      // (banned, quarantined, crashed, partitioned away) for longer than a
      // lease timeout, start solving pending leases in-process. One lease
      // per pass, so a worker that comes back mid-degradation is handed the
      // remainder immediately. A self-hosted (fork-local) fleet degrades
      // even with zero joins: the coordinator forked every worker it will
      // ever have, so if none survived long enough to join, waiting is a
      // hang, not patience.
      if ((c.stats.workers_joined > 0 || options.self_hosted_fleet) && c.open_conns.empty()) {
        if (!fleet_was_missing) {
          fleet_was_missing = true;
          fleet_missing_since = watch.seconds();
        } else if (watch.seconds() - fleet_missing_since > options.lease_timeout_seconds) {
          degrade = true;
        }
      } else {
        fleet_was_missing = false;
      }
    }
    if (degrade && self_solve_one_lease(c)) continue;
    struct pollfd pfd = {listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int cfd = ::accept(listen_fd, nullptr, nullptr);
    if (cfd < 0) continue;
    handlers.emplace_back([&c, cfd] { handle_connection(c, cfd); });
  }
  if (force_close) {
    // Cancellation/timeout: cut every worker loose; their reads fail, the
    // handlers release the leases and exit.
    std::lock_guard<std::mutex> lock(c.mutex);
    for (const ConnInfo& info : c.open_conns) info.conn->shutdown();
  }
  for (std::thread& handler : handlers) handler.join();
  ::close(listen_fd);
  if (journal) journal->flush();
  {
    // Completion stamps for properties finished by the final lease (or never
    // finished at all on a forced stop).
    std::lock_guard<std::mutex> lock(c.mutex);
    for (std::size_t p = 0; p < properties.size(); ++p) check_property_finished(c, p);
  }

  // Assemble PropertyResults exactly like the in-process checker.
  std::vector<checker::PropertyResult> results;
  results.reserve(properties.size());
  for (std::size_t p = 0; p < properties.size(); ++p) {
    PropMerge& prop = c.props[p];
    checker::PropertyResult result;
    result.property = properties[p].name;
    result.schemas_checked = prop.checked;
    result.schemas_pruned = prop.pruned;
    result.schemas_cut = prop.cut;
    result.lemma_hits = prop.lemma_hits;
    result.lemmas_learned = prop.lemmas_learned;
    result.schemas_unknown = prop.unknown;
    result.schemas_resumed = prop.resumed;
    result.retries = prop.retries;
    result.interrupted = c.interrupted;
    result.avg_schema_length =
        prop.checked == 0 ? 0.0
                          : static_cast<double>(prop.total_length) /
                                static_cast<double>(prop.checked);
    result.seconds = prop.finished ? prop.seconds : watch.seconds();
    result.simplex_pivots = prop.pivots;
    result.rational_fast_ops = prop.rational_fast_ops;
    result.rational_big_ops = prop.rational_big_ops;
    result.schemas_spot_checked = prop.spot_checks;
    result.spot_check_disagreements = prop.spot_failures;
    if (c.check.incremental) result.incremental = prop.incremental;

    const auto progress = [&] {
      return " after " + format_seconds(result.seconds) + "s; solved " +
             std::to_string(result.schemas_checked) + "/" + std::to_string(prop.enumerated) +
             " enumerated schemas, " + std::to_string(result.schemas_pruned) + " pruned";
    };
    const bool complete_leases = [&] {
      for (const Lease& lease : c.leases) {
        if (lease.property == p && lease.state != LeaseState::kDone) return false;
      }
      return true;
    }();
    if (prop.counterexample) {
      result.verdict = checker::Verdict::kViolated;
      result.counterexample = std::move(prop.counterexample);
    } else if (!prop.error_note.empty()) {
      result.verdict = checker::Verdict::kUnknown;
      result.note = prop.error_note + progress();
    } else if (c.interrupted) {
      result.verdict = checker::Verdict::kUnknown;
      result.note = "interrupted" + progress();
    } else if (c.timed_out) {
      result.verdict = checker::Verdict::kUnknown;
      result.note =
          "timeout (limit " + format_seconds(options.check.timeout_seconds) + "s)" + progress();
    } else if (prop.budget_exhausted) {
      result.verdict = checker::Verdict::kUnknown;
      result.note = "schema budget exhausted (" +
                    std::to_string(c.check.enumeration.max_schemas) + ")" + progress();
    } else if (prop.unknown > 0) {
      result.verdict = checker::Verdict::kUnknown;
      result.note = prop.degrade_note + " (" + std::to_string(prop.unknown) +
                    " schemas unknown)" + progress();
    } else if (!complete_leases) {
      result.verdict = checker::Verdict::kUnknown;
      result.note = "run stopped before full coverage" + progress();
    } else {
      result.verdict = checker::Verdict::kHolds;
    }
    if (!prop.disagreement.empty()) {
      result.note =
          result.note.empty() ? prop.disagreement : result.note + "; " + prop.disagreement;
    }
    if (c.check.certify) {
      auto evidence = std::make_shared<checker::PropertyEvidence>();
      evidence->schemas = std::move(prop.evidence);
      evidence->pruned = std::move(prop.pruned_schemas);
      evidence->enumeration = c.check.enumeration;
      evidence->property_directed_pruning = c.check.property_directed_pruning;
      evidence->complete = result.verdict == checker::Verdict::kHolds;
      result.evidence = std::move(evidence);
    }
    results.push_back(std::move(result));
  }
  if (stats != nullptr) {
    std::lock_guard<std::mutex> lock(c.mutex);
    *stats = c.stats;
  }
  return results;
}

std::vector<checker::PropertyResult> serve(const std::string& model_text,
                                           const std::vector<PropertySpec>& specs,
                                           const std::string& listen_address,
                                           const DistOptions& options, DistStats* stats) {
  const Address address = parse_address(listen_address);
  const int listen_fd = listen_on(address);
  std::vector<checker::PropertyResult> results;
  try {
    results = serve_fd(listen_fd, model_text, specs, options, stats);
  } catch (...) {
    if (address.unix_domain) ::unlink(address.path.c_str());
    throw;
  }
  if (address.unix_domain) ::unlink(address.path.c_str());
  return results;
}

}  // namespace hv::dist
