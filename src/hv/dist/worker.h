// Distributed verification worker: connects to a coordinator, reconstructs
// the automaton and properties from the welcome message, then pulls schema
// subtree leases and streams back one verdict record per schema, settling
// every unit through the same SchemaSolver retry ladder as the in-process
// pool. Runs equally as a process (`hvc work`) or as a plain thread (tests
// drive coordinator and workers in one process over a unix socket).
#ifndef HV_DIST_WORKER_H
#define HV_DIST_WORKER_H

#include <atomic>
#include <cstdint>
#include <string>

#include "hv/checker/fault.h"

namespace hv::dist {

struct WorkerOptions {
  /// Coordinator address ("unix:/path" or "tcp:host:port").
  std::string connect;
  /// Reported in the hello message; shows up in coordinator diagnostics.
  std::string label = "worker";
  /// Keep retrying the initial connect for this long (the coordinator may
  /// still be binding when the worker starts).
  double connect_retry_seconds = 10.0;
  /// Reconnect budget (seconds; 0 disables): after a *connection-level*
  /// failure — connect refused, lost mid-run, handshake that never arrived —
  /// keep re-running the whole worker lifecycle (connect, handshake, lease
  /// loop) with exponential backoff (50ms doubling, capped at 2s) until this
  /// much time passes without a successful connection, so a restarting
  /// coordinator (the service daemon bouncing between jobs) never strands
  /// its fleet. Semantic stops — clean shutdown, cancellation, an injected
  /// abort, protocol or model-hash mismatch — never reconnect. Lease/record
  /// totals accumulate across attempts.
  double reconnect_seconds = 0.0;
  /// Liveness heartbeat period (`hvc work --heartbeat-ms`); must stay well
  /// under the coordinator's lease timeout or a long single-schema solve
  /// looks like a dead worker. The welcome message carries the
  /// coordinator's lease timeout, and the worker refuses to run when the
  /// period exceeds half of it (a semantic stop — reconnecting cannot fix
  /// a misconfiguration).
  int heartbeat_ms = 1000;
  /// Give up when the coordinator goes silent for this long.
  int recv_timeout_ms = 120'000;
  /// Deterministic fault injection inside the solving loop (hvc work arms
  /// it from HV_FAULT_* like hvc check does).
  checker::FaultPlan fault;
  /// External cancellation (SIGINT in hvc work); the worker drops the
  /// connection and returns, and the coordinator reassigns its lease.
  const std::atomic<bool>* cancel = nullptr;
  /// Test hook: after streaming this many records, drop the connection
  /// abruptly mid-lease (simulates a crashed worker; 0 disables).
  std::int64_t drop_after_records = 0;
  /// Test hook (HV_LIE_VERDICTS=1 under `hvc work`): report every unsat
  /// schema as a forged counterexample-free "sat" — a Byzantine worker the
  /// coordinator's spot-checking must catch. Never enable outside
  /// adversarial testing.
  bool lie_about_verdicts = false;
};

struct WorkerReport {
  /// True iff the coordinator sent a clean shutdown (run complete).
  bool completed = false;
  /// True iff an injected WorkerAbortFault killed the solving loop; the
  /// hosting process should exit nonzero.
  bool aborted = false;
  std::int64_t leases = 0;
  std::int64_t records = 0;
  std::string note;  // why the worker stopped, when not `completed`
};

/// Runs the worker loop until shutdown, cancellation, connection loss or an
/// injected abort. Throws hv::Error only for local misconfiguration (bad
/// address); everything network-side is reported in the returned note.
WorkerReport run_worker(const WorkerOptions& options);

/// Reconnect backoff with deterministic bounded jitter: `base_ms` ±25%,
/// drawn from (seed, attempt) so a restarted fleet of identically
/// configured workers spreads its reconnect storm instead of hammering the
/// coordinator in lockstep. Exposed for tests (the bound is asserted).
std::int64_t jittered_backoff_ms(std::int64_t base_ms, std::uint64_t seed, int attempt);

}  // namespace hv::dist

#endif  // HV_DIST_WORKER_H
