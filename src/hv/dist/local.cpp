#include "hv/dist/local.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <sys/un.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "hv/dist/worker.h"
#include "hv/util/error.h"

namespace hv::dist {

std::vector<checker::PropertyResult> check_distributed_local(
    const std::string& model_text, const std::vector<PropertySpec>& specs, int worker_count,
    const DistOptions& options, DistStats* stats) {
  if (worker_count < 1) throw InvalidArgument("dist: worker count must be >= 1");
  // A private 0700 directory from mkdtemp, not a predictable path in the
  // world-writable temp root: a predictable name lets another local user
  // squat the path (the run fails) or connect as a rogue worker. TMPDIR is
  // honored (sandboxes and CI point it at per-job scratch space), falling
  // back to /tmp.
  std::string tmp_root = "/tmp";
  if (const char* env = std::getenv("TMPDIR"); env != nullptr && *env != '\0') {
    tmp_root = env;
    while (tmp_root.size() > 1 && tmp_root.back() == '/') tmp_root.pop_back();
  }
  const std::string templ = tmp_root + "/hvc-XXXXXX";
  // The socket path must fit sockaddr_un; check before mkdtemp so the error
  // names the culprit instead of a bind(2) failing with a truncated path.
  const std::size_t path_len = templ.size() + std::string("/dist.sock").size();
  const std::size_t path_max = sizeof(sockaddr_un{}.sun_path) - 1;
  if (path_len > path_max) {
    throw InvalidArgument("dist: socket path '" + templ + "/dist.sock' (" +
                          std::to_string(path_len) + " bytes) exceeds the unix-socket limit of " +
                          std::to_string(path_max) +
                          " bytes; point TMPDIR at a shorter path");
  }
  std::vector<char> dir_template(templ.begin(), templ.end());
  dir_template.push_back('\0');
  if (::mkdtemp(dir_template.data()) == nullptr) {
    throw Error("dist: cannot create a private socket directory under " + tmp_root);
  }
  const std::string socket_dir = dir_template.data();
  Address address;
  address.unix_domain = true;
  address.path = socket_dir + "/dist.sock";
  const auto cleanup_socket = [&] {
    ::unlink(address.path.c_str());
    ::rmdir(socket_dir.c_str());
  };

  // Bind before forking so no child races the listen; children then only
  // ever see a connectable socket.
  int listen_fd = -1;
  try {
    listen_fd = listen_on(address);
  } catch (...) {
    ::rmdir(socket_dir.c_str());
    throw;
  }

  DistOptions coordinator_options = options;
  coordinator_options.expected_workers = worker_count;
  coordinator_options.self_hosted_fleet = true;
  WorkerOptions worker_options;
  worker_options.connect = "unix:" + address.path;
  worker_options.fault = options.check.fault;
  // A forked worker that loses its connection (injected chaos, a flaky
  // veth) rejoins instead of dying for good; run-complete shutdowns are
  // semantic stops, so clean exits are unaffected. Stragglers still
  // reconnect-spinning after the run get the SIGTERM below.
  worker_options.reconnect_seconds = 60.0;

  std::vector<pid_t> children;
  for (int w = 0; w < worker_count; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (const pid_t child : children) ::kill(child, SIGKILL);
      ::close(listen_fd);
      cleanup_socket();
      throw Error("dist: fork failed");
    }
    if (pid == 0) {
      // Child: pure worker process. _exit (not exit) — the parent's stdio
      // and atexit state are not ours to flush.
      ::close(listen_fd);
      WorkerOptions mine = worker_options;
      mine.label = "local-" + std::to_string(w);
      int code = 0;
      try {
        const WorkerReport report = run_worker(mine);
        code = report.aborted ? 3 : 0;
      } catch (...) {
        code = 2;
      }
      ::_exit(code);
    }
    children.push_back(pid);
  }

  std::vector<checker::PropertyResult> results;
  try {
    results = serve_fd(listen_fd, model_text, specs, coordinator_options, stats);
  } catch (...) {
    for (const pid_t child : children) ::kill(child, SIGKILL);
    for (const pid_t child : children) ::waitpid(child, nullptr, 0);
    cleanup_socket();
    throw;
  }
  // Workers exit on the shutdown frame; reap them all (a stuck child would
  // hang the command, so give stragglers a SIGTERM after the clean wave).
  for (const pid_t child : children) {
    int status = 0;
    bool reaped = false;
    for (int spins = 0; spins < 100 && !reaped; ++spins) {
      reaped = ::waitpid(child, &status, WNOHANG) == child;
      if (!reaped) ::usleep(20'000);
    }
    if (!reaped) {
      ::kill(child, SIGTERM);
      ::waitpid(child, &status, 0);
    }
  }
  cleanup_socket();
  return results;
}

}  // namespace hv::dist
