// Deterministic network-chaos layer for the distributed verification
// service.
//
// A ChaosLink sits between a Conn and its socket and injects frame-level
// faults from a seeded plan (mirroring checker/fault.h's FaultInjector for
// solver faults): delivery delay, frame drop, duplication, reordering,
// truncation mid-frame, and one-sided partitions. The plan is read from the
// environment (HV_NET_FAULT_KIND / HV_NET_FAULT_RATE / HV_NET_FAULT_SEED)
// so smoke tests and CI can torture `hvc serve`/`hvc work` and the daemon's
// fork-local job workers without code changes.
//
// Fault semantics are chosen so the injection stays *honest about TCP*: a
// reliable byte stream can only lose or corrupt data by dying, so `drop`
// and `truncate` also shut the connection down, and a one-sided `partition`
// half-closes the write side (the peer sees a prompt EOF instead of a
// two-minute recv stall). `delay`, `dup` and `reorder` are the faults a
// real network can deliver on a live connection, and the coordinator's
// cursor-keyed idempotent record handling is what makes them harmless —
// which is exactly the property chaos_smoke.sh asserts.
#ifndef HV_DIST_CHAOS_H
#define HV_DIST_CHAOS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hv::dist {

enum class NetFaultKind {
  kNone,
  kDelay,      // hold the frame 1-25 ms before sending
  kDrop,       // lose the frame; the stream dies with it (shutdown RDWR)
  kDup,        // deliver the frame twice
  kReorder,    // hold the frame; the next send (or recv) overtakes it
  kTruncate,   // send the header and half the payload, then die
  kPartition,  // one-sided: silently swallow all future sends, half-close
  kMix,        // pick one of the above per fired event
};

struct NetFaultPlan {
  NetFaultKind kind = NetFaultKind::kNone;
  double rate = 0.0;       // per-frame fire probability in [0, 1]
  std::uint64_t seed = 1;  // base seed; each link derives its own stream
  bool armed() const { return kind != NetFaultKind::kNone && rate > 0.0; }
};

/// Reads HV_NET_FAULT_KIND ("delay"|"drop"|"dup"|"reorder"|"truncate"|
/// "partition"|"mix"), HV_NET_FAULT_RATE (default 0.02) and
/// HV_NET_FAULT_SEED (default 1). Unknown kinds stay disarmed. Parsed per
/// connection, so tests can re-arm between runs in one process.
NetFaultPlan net_fault_plan_from_env();

/// Per-connection fault injector. NOT internally synchronized: the owning
/// Conn must call send()/flush() under its write lock (heartbeat threads
/// share the write side with the main loop).
class ChaosLink {
 public:
  /// `link_serial` decorrelates the per-link PRNG streams while keeping
  /// the whole process deterministic for a fixed plan seed.
  ChaosLink(const NetFaultPlan& plan, std::uint64_t link_serial);

  /// Sends one frame through the fault plan. Returns false only on a real
  /// write failure; an injected loss reports success, like a network would.
  bool send(int fd, std::string_view payload);

  /// Delivers a held (reordered) frame before the owner blocks on a read,
  /// so a request/reply exchange can never deadlock on a held request.
  void flush(int fd);

 private:
  NetFaultKind next_fault();

  NetFaultPlan plan_;
  std::uint64_t state_;
  std::optional<std::string> held_;
  bool partitioned_ = false;
};

}  // namespace hv::dist

#endif  // HV_DIST_CHAOS_H
