#include "hv/dist/worker.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "hv/cert/certificate.h"
#include "hv/checker/cone.h"
#include "hv/checker/guard_analysis.h"
#include "hv/checker/journal.h"
#include "hv/checker/learning.h"
#include "hv/checker/parameterized.h"
#include "hv/checker/schema_solver.h"
#include "hv/dist/protocol.h"
#include "hv/ta/parser.h"
#include "hv/util/error.h"
#include "hv/util/stopwatch.h"
#include "hv/util/version.h"

namespace hv::dist {

namespace {

cert::Json stats_delta(const checker::IncrementalStats& before,
                       const checker::IncrementalStats& after) {
  return cert::Json::Object{
      {"segments_pushed", after.segments_pushed - before.segments_pushed},
      {"segments_popped", after.segments_popped - before.segments_popped},
      {"segments_reused", after.segments_reused - before.segments_reused},
      {"schemas_encoded", after.schemas_encoded - before.schemas_encoded},
  };
}

// Why the lease enumeration stopped (beyond "subtree exhausted").
// kAbandoned: the coordinator no longer wants the subtree (property settled
// or lease reassigned); closed with a normal lease_done like kComplete.
enum class LeaseExit {
  kComplete,
  kSatFound,
  kAbandoned,
  kDropped,
  kAborted,
  kInterrupted,
  kLost,
};

// One full worker lifecycle: connect, handshake, lease loop. run_worker
// layers the reconnect policy on top.
WorkerReport run_worker_attempt(const WorkerOptions& options) {
  WorkerReport report;
  const Address address = parse_address(options.connect);

  // The coordinator may still be binding its socket: retry the connect with
  // a short backoff until the window closes.
  int fd = -1;
  const Stopwatch connect_watch;
  for (;;) {
    fd = connect_to(address);
    if (fd >= 0) break;
    if (connect_watch.seconds() >= options.connect_retry_seconds) {
      report.note = "cannot connect to " + options.connect;
      return report;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  Conn conn(fd, /*subject_to_chaos=*/true);

  cert::Json hello = cert::Json::Object{{"type", "hello"},
                                        {"protocol", kDistProtocolVersion},
                                        {"label", options.label}};
  // Advertise cross-schema learning unless disabled locally (HV_NO_LEMMAS):
  // a coordinator that does not learn simply never echoes the feature, and
  // this worker degrades to plain no-lemma solving.
  {
    checker::CheckOptions probe;
    if (checker::lemmas_enabled(probe)) hello.set("features", cert::Json::Array{"learn"});
  }
  if (!conn.send(hello)) {
    report.note = "handshake send failed";
    return report;
  }
  cert::Json welcome;
  if (conn.recv(&welcome, options.recv_timeout_ms) != FrameStatus::kOk) {
    report.note = "no welcome from coordinator";
    return report;
  }

  // Reconstruct the run from the welcome message and verify, via the model
  // content hash, that this worker's parse numbered the automaton exactly
  // like the coordinator's (ids travel raw on the wire). Missing/mistyped
  // fields, unparseable model text or uncompilable properties all throw —
  // per the header contract they become a diagnostic note, never an
  // exception escaping into the hosting process.
  checker::CheckOptions check;
  std::optional<ta::ThresholdAutomaton> parsed;
  std::vector<spec::Property> properties;
  bool peer_learn = false;
  try {
    if (welcome.at("type").as_string() == "shutdown") {
      // The coordinator refused this label before granting anything
      // (quarantined or banned for the run). A semantic stop: reconnecting
      // under the same label would only be refused again.
      const cert::Json* reason = welcome.find("reason");
      report.note = "coordinator refused: " +
                    (reason != nullptr && reason->kind() == cert::Json::Kind::kString
                         ? reason->as_string()
                         : std::string("(no reason given)"));
      return report;
    }
    if (welcome.at("type").as_string() != "welcome") {
      report.note = "no welcome from coordinator";
      return report;
    }
    if (welcome.at("protocol").as_int() != kDistProtocolVersion) {
      report.note = "coordinator speaks protocol " +
                    std::to_string(welcome.at("protocol").as_int()) +
                    ", this worker speaks " + std::to_string(kDistProtocolVersion);
      return report;
    }
    check = options_from_json(welcome.at("options"));
    parsed.emplace(ta::parse_ta(welcome.at("model_text").as_string()).one_round_reduction());
    const std::string model_hash = checker::model_content_hash(*parsed);
    if (model_hash != welcome.at("model_hash").as_string()) {
      report.note = "model hash mismatch: coordinator " +
                    welcome.at("model_hash").as_string() + ", local parse " + model_hash;
      return report;
    }
    properties = resolve_properties(*parsed, specs_from_json(welcome.at("properties")));
    // Tolerant feature read: a pre-upgrade coordinator omits the array and
    // this worker solves without lemmas instead of dropping the connection.
    if (const cert::Json* features = welcome.find("features")) {
      for (const cert::Json& feature : features->as_array()) {
        if (feature.kind() == cert::Json::Kind::kString &&
            feature.as_string() == "learn") {
          peer_learn = true;
        }
      }
    }
    // Tolerant lease-timeout read: refuse a heartbeat period the
    // coordinator would mistake for death. A period above half the lease
    // timeout leaves no slack for a slow schema between beats; the stop is
    // semantic (reconnecting cannot fix a misconfiguration).
    if (const cert::Json* lease_timeout = welcome.find("lease_timeout")) {
      if (lease_timeout->kind() == cert::Json::Kind::kDouble ||
          lease_timeout->kind() == cert::Json::Kind::kInt) {
        const double lease_ms = lease_timeout->as_double() * 1000.0;
        if (lease_ms > 0.0 && static_cast<double>(options.heartbeat_ms) > lease_ms / 2.0) {
          report.note = "heartbeat period " + std::to_string(options.heartbeat_ms) +
                        "ms exceeds half the coordinator's lease timeout (" +
                        std::to_string(static_cast<std::int64_t>(lease_ms)) +
                        "ms): the coordinator would expropriate this worker's leases "
                        "mid-solve; lower --heartbeat-ms or raise --lease-timeout";
          return report;
        }
      }
    }
  } catch (const std::exception& e) {
    report.note = std::string("malformed welcome from coordinator: ") + e.what();
    return report;
  }
  check.fault = options.fault;
  check.cancel = options.cancel;
  const ta::ThresholdAutomaton& ta = *parsed;

  const checker::GuardAnalysis analysis(ta);
  // deque: QueryCone owns a mutex and must not move.
  std::map<std::pair<std::size_t, std::size_t>, std::unique_ptr<checker::QueryCone>> cones;
  const auto cone_for = [&](std::size_t p, std::size_t q) -> const checker::QueryCone* {
    if (!check.property_directed_pruning) return nullptr;
    auto& slot = cones[{p, q}];
    if (!slot) {
      slot = std::make_unique<checker::QueryCone>(analysis, properties[p].queries[q]);
    }
    return slot.get();
  };

  const Stopwatch run_watch;  // the shipped global timeout counts from the welcome
  checker::FaultInjector injector(options.fault);
  std::atomic<std::int64_t> memory_polls{0};
  checker::SolveHooks hooks;
  hooks.run_watch = &run_watch;
  hooks.injector = &injector;
  hooks.memory_polls = &memory_polls;
  // Cross-schema learning, active only when both sides negotiated "learn"
  // and the shipped options allow it (incremental, not certify, lemmas on,
  // HV_NO_LEMMAS unset). One pool + cut index per (property, query), fed by
  // local refutations and by coordinator learn frames/lease payloads.
  const bool learn_mode = peer_learn && checker::lemmas_enabled(check);
  std::vector<std::unique_ptr<checker::PropertyLearning>> learning(properties.size());
  const auto learning_for = [&](std::size_t p) -> checker::PropertyLearning& {
    auto& slot = learning[p];
    if (!slot) {
      slot = std::make_unique<checker::PropertyLearning>(properties[p].queries.size());
    }
    return *slot;
  };
  // Folds the cuts[]/lemmas[] arrays of a learn frame or lease grant.
  // Tolerant of malformed entries: learning facts are advisory, a bad one is
  // dropped rather than dropping the coordinator.
  const auto apply_learn_arrays = [&](std::size_t p, const cert::Json* cuts,
                                      const cert::Json* lemmas) {
    if (!learn_mode || p >= properties.size()) return;
    checker::PropertyLearning& learn = learning_for(p);
    try {
      if (cuts != nullptr) {
        for (const cert::Json& entry : cuts->as_array()) {
          const auto q = static_cast<std::size_t>(entry.at("q").as_int());
          if (q >= properties[p].queries.size()) continue;
          std::vector<int> prefix;
          for (const cert::Json& g : entry.at("prefix").as_array()) {
            prefix.push_back(static_cast<int>(g.as_int()));
          }
          learn.queries[q].cuts.add(prefix);
        }
      }
      if (lemmas != nullptr) {
        for (const cert::Json& entry : lemmas->as_array()) {
          const auto q = static_cast<std::size_t>(entry.at("q").as_int());
          if (q >= properties[p].queries.size()) continue;
          smt::Lemma lemma;
          for (const cert::Json& premise : entry.at("premises").as_array()) {
            lemma.premises.push_back(premise.as_string());
          }
          if (lemma.premises.empty()) continue;
          // fresh=false: a remote lemma must not be echoed back by the next
          // take_fresh() shipment.
          learn.queries[q].lemmas.insert(std::move(lemma), /*fresh=*/false);
        }
      }
    } catch (const std::exception&) {
      // Partially applied is fine — every fact stands on its own.
    }
  };
  const auto apply_learn_frame = [&](const cert::Json& msg) {
    const cert::Json* p_field = msg.find("p");
    if (p_field == nullptr) return;
    try {
      apply_learn_arrays(static_cast<std::size_t>(p_field->as_int()), msg.find("cuts"),
                         msg.find("lemmas"));
    } catch (const std::exception&) {
    }
  };
  std::vector<std::unique_ptr<checker::SchemaSolver>> solvers(properties.size());
  const auto solver_for = [&](std::size_t p) -> checker::SchemaSolver& {
    if (!solvers[p]) {
      checker::SolveHooks prop_hooks = hooks;
      if (learn_mode) prop_hooks.learning = &learning_for(p);
      solvers[p] =
          std::make_unique<checker::SchemaSolver>(analysis, properties[p], check, prop_hooks);
    }
    return *solvers[p];
  };

  // Liveness heartbeats: the coordinator renews the lease deadline on any
  // frame, so a long single-schema solve must not look like a dead worker.
  std::atomic<bool> heartbeat_stop{false};
  std::thread heartbeat([&] {
    while (!heartbeat_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.heartbeat_ms));
      if (heartbeat_stop.load(std::memory_order_relaxed)) break;
      if (!conn.send(cert::Json::Object{{"type", "heartbeat"}})) break;
    }
  });
  const auto stop_heartbeat = [&] {
    heartbeat_stop.store(true);
    if (heartbeat.joinable()) heartbeat.join();
  };

  const auto cancelled = [&] {
    return options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed);
  };
  const auto remaining = [&] {
    return check.timeout_seconds > 0.0 ? check.timeout_seconds - run_watch.seconds() : 0.0;
  };

  for (;;) {
    if (cancelled()) {
      report.note = "cancelled";
      break;
    }
    if (!conn.send(cert::Json::Object{{"type", "next"}})) {
      // The coordinator may have sent shutdown and closed its end while we
      // slept in a wait backoff; the frame is still in our receive buffer.
      cert::Json last;
      if (conn.recv(&last, 100) == FrameStatus::kOk) {
        const cert::Json* last_type = last.find("type");
        report.completed = last_type != nullptr &&
                           last_type->kind() == cert::Json::Kind::kString &&
                           last_type->as_string() == "shutdown";
      }
      if (!report.completed) report.note = "connection lost";
      break;
    }
    // Decode the reply inside try/catch: a missing or mistyped field is a
    // malformed coordinator message, reported in the note per the header
    // contract (run-as-a-thread hosts must never see an escaping throw).
    std::int64_t lease_id = -1;
    std::size_t p = 0;
    std::size_t q = 0;
    checker::SubtreeTask task;
    std::unordered_set<std::string> skip;
    bool stop = false;
    bool wait = false;
    try {
      cert::Json reply;
      FrameStatus status = conn.recv(&reply, options.recv_timeout_ms);
      // A late "abandon" for a lease that already closed — or a broadcast
      // "learn" frame — can sit ahead of the real reply in the byte stream;
      // fold learn frames and skip past both. A duplicated "welcome" (the
      // chaos layer can double any frame) is equally benign: the handshake
      // already ran, skip the echo.
      while (status == FrameStatus::kOk && reply.find("type") != nullptr &&
             (reply.at("type").as_string() == "abandon" ||
              reply.at("type").as_string() == "learn" ||
              reply.at("type").as_string() == "welcome")) {
        if (reply.at("type").as_string() == "learn") apply_learn_frame(reply);
        status = conn.recv(&reply, options.recv_timeout_ms);
      }
      if (status != FrameStatus::kOk) {
        report.note = "coordinator connection " + std::string(to_string(status));
        break;
      }
      const std::string& type = reply.at("type").as_string();
      if (type == "shutdown") {
        report.completed = true;
        break;
      }
      if (type == "wait") {
        const auto ms = std::min<std::int64_t>(reply.at("ms").as_int(), 2000);
        std::this_thread::sleep_for(std::chrono::milliseconds(ms > 0 ? ms : 100));
        wait = true;
      } else if (type != "lease") {
        report.note = "unexpected message '" + type + "'";
        break;
      } else {
        // --- decode one lease ----------------------------------------------
        lease_id = reply.at("lease").as_int();
        p = static_cast<std::size_t>(reply.at("property").as_int());
        q = static_cast<std::size_t>(reply.at("query").as_int());
        if (p >= properties.size() || q >= properties[p].queries.size()) {
          report.note = "lease names an unknown property/query";
          break;
        }
        for (const cert::Json& g : reply.at("prefix").as_array()) {
          task.prefix.push_back(static_cast<int>(g.as_int()));
        }
        task.include_extensions = reply.at("extensions").as_bool();
        for (const cert::Json& cursor : reply.at("skip").as_array()) {
          skip.insert(cursor.as_string());
        }
        // Learning payload of the grant: the fleet's accumulated cuts and
        // lemmas for this (property, query).
        apply_learn_arrays(p, reply.find("cuts"), reply.find("lemmas"));
      }
    } catch (const std::exception& e) {
      report.note = std::string("malformed coordinator message: ") + e.what();
      stop = true;
    }
    if (stop) break;
    if (wait) continue;
    ++report.leases;

    const checker::QueryCone* cone = cone_for(p, q);
    checker::SchemaSolver& solver = solver_for(p);
    const checker::IncrementalStats before = solver.stats();
    const int cut_count = static_cast<int>(properties[p].queries[q].cuts.size());
    LeaseExit exit = LeaseExit::kComplete;
    // Per-lease learning accounting, reported in lease_done. New cuts ride
    // on their unsat record frames; only lemmas travel in learn frames.
    std::int64_t lease_cut = 0;
    std::int64_t lease_hits = 0;
    std::int64_t lease_learned = 0;

    // The coordinator can cut a lease short mid-stream with an "abandon"
    // frame — the property settled under another worker (first witness,
    // exhausted budget) or this lease was reassigned. Poll after every
    // record so the worker never keeps solving a subtree nobody wants.
    const auto abandoned = [&] {
      while (conn.readable()) {
        cert::Json note;
        if (conn.recv(&note, options.recv_timeout_ms) != FrameStatus::kOk) {
          exit = LeaseExit::kLost;
          return true;
        }
        const cert::Json* type = note.find("type");
        if (type == nullptr || type->kind() != cert::Json::Kind::kString) continue;
        if (type->as_string() == "abandon") {
          exit = LeaseExit::kAbandoned;
          return true;
        }
        // Broadcast learning facts from other workers arrive mid-lease and
        // take effect on the very next schema of this enumeration.
        if (type->as_string() == "learn") apply_learn_frame(note);
      }
      return false;
    };

    const auto stream = [&](cert::Json message) {
      if (!conn.send(message)) {
        exit = LeaseExit::kLost;
        return false;
      }
      ++report.records;
      if (options.drop_after_records > 0 && report.records >= options.drop_after_records) {
        exit = LeaseExit::kDropped;
        return false;
      }
      return !abandoned();
    };

    enumerate_schemas_under(
        analysis, task, cut_count, check.enumeration, [&](const checker::Schema& schema) {
          if (cancelled()) {
            exit = LeaseExit::kInterrupted;
            return false;
          }
          const std::string cursor = checker::schema_cursor(q, schema);
          if (skip.count(cursor) > 0) return true;  // settled before this lease
          if (learn_mode && learning_for(p).queries[q].cuts.covers(schema.unlock_order)) {
            // A recorded subtree cut refutes this schema without a solve (and
            // without a record frame — the count travels in lease_done).
            ++lease_cut;
            return true;
          }
          if (cone != nullptr && !cone->schema_feasible(schema)) {
            return stream(cert::Json::Object{{"type", "record"},
                                             {"lease", lease_id},
                                             {"property", static_cast<std::int64_t>(p)},
                                             {"cursor", cursor},
                                             {"verdict", "pruned"},
                                             {"length", 0},
                                             {"pivots", 0},
                                             {"retries", 0},
                                             {"note", ""}});
          }
          checker::UnitOutcome outcome = solver.solve(q, schema, cone, remaining());
          lease_hits += outcome.lemma_hits;
          lease_learned += outcome.lemmas_learned;
          std::int64_t record_cut = -1;
          if (learn_mode && outcome.kind == checker::UnitOutcome::Kind::kUnsat &&
              outcome.cut_prefix >= 0 &&
              outcome.cut_prefix <= static_cast<int>(schema.unlock_order.size())) {
            std::vector<int> prefix(schema.unlock_order.begin(),
                                    schema.unlock_order.begin() + outcome.cut_prefix);
            if (learning_for(p).queries[q].cuts.add(prefix)) {
              record_cut = outcome.cut_prefix;
            }
          }
          switch (outcome.kind) {
            case checker::UnitOutcome::Kind::kAborted:
              exit = LeaseExit::kAborted;
              return false;
            case checker::UnitOutcome::Kind::kInterrupted:
              exit = LeaseExit::kInterrupted;
              report.note = outcome.note;
              return false;
            case checker::UnitOutcome::Kind::kUnknown:
              return stream(cert::Json::Object{{"type", "record"},
                                               {"lease", lease_id},
                                               {"property", static_cast<std::int64_t>(p)},
                                               {"cursor", cursor},
                                               {"verdict", "unknown"},
                                               {"length", 0},
                                               {"pivots", 0},
                                               {"retries", outcome.retries},
                                               {"note", outcome.note}});
            case checker::UnitOutcome::Kind::kUnsat: {
              if (options.lie_about_verdicts) {
                // Byzantine test hook: forge a counterexample-free "sat" for
                // a schema the solver just refuted, then stop the lease like
                // an honest witness-finder would. Spot-checking must catch
                // this; --certify would catch it offline.
                cert::Json forged = cert::Json::Object{{"type", "sat"},
                                                       {"lease", lease_id},
                                                       {"property", static_cast<std::int64_t>(p)},
                                                       {"cursor", cursor},
                                                       {"length", outcome.length},
                                                       {"pivots", outcome.pivots},
                                                       {"fast", outcome.rational_fast_ops},
                                                       {"big", outcome.rational_big_ops},
                                                       {"retries", outcome.retries},
                                                       {"validation_error", ""}};
                if (stream(std::move(forged))) exit = LeaseExit::kSatFound;
                return false;
              }
              cert::Json record = cert::Json::Object{{"type", "record"},
                                                     {"lease", lease_id},
                                                     {"property", static_cast<std::int64_t>(p)},
                                                     {"cursor", cursor},
                                                     {"verdict", "unsat"},
                                                     {"length", outcome.length},
                                                     {"pivots", outcome.pivots},
                                                     {"fast", outcome.rational_fast_ops},
                                                     {"big", outcome.rational_big_ops},
                                                     {"retries", outcome.retries},
                                                     {"note", ""}};
              // The cut rides on the record so the coordinator journals the
              // verdict and the subtree cut in one atomic line.
              if (record_cut >= 0) record.set("cut", record_cut);
              if (check.certify && outcome.proof) {
                record.set("proof", cert::proof_to_json(*outcome.proof));
              }
              return stream(std::move(record));
            }
            case checker::UnitOutcome::Kind::kSat: {
              cert::Json message = cert::Json::Object{{"type", "sat"},
                                                      {"lease", lease_id},
                                                      {"property", static_cast<std::int64_t>(p)},
                                                      {"cursor", cursor},
                                                      {"length", outcome.length},
                                                      {"pivots", outcome.pivots},
                                                      {"fast", outcome.rational_fast_ops},
                                                      {"big", outcome.rational_big_ops},
                                                      {"retries", outcome.retries},
                                                      {"validation_error",
                                                       outcome.validation_error}};
              if (outcome.counterexample) {
                message.set("counterexample", counterexample_to_json(*outcome.counterexample));
              }
              if (check.certify && outcome.model) {
                message.set("model", model_values_to_json(*outcome.model));
              }
              if (stream(std::move(message))) exit = LeaseExit::kSatFound;
              // Either way stop this lease: the property is settled (or the
              // connection is gone).
              return false;
            }
          }
          return true;
        });

    if (exit == LeaseExit::kDropped) {
      // Test hook: die abruptly mid-lease, exactly like a SIGKILL'd process
      // — no lease_done, no goodbye.
      report.note = "dropped connection (test hook)";
      stop_heartbeat();
      conn.close();
      return report;
    }
    if (exit == LeaseExit::kAborted) {
      report.aborted = true;
      report.note = "worker aborted mid-schema";
      break;
    }
    if (exit == LeaseExit::kInterrupted) {
      if (report.note.empty()) report.note = "interrupted";
      break;
    }
    if (exit == LeaseExit::kLost) {
      report.note = "connection lost";
      break;
    }
    // Ship freshly learned lemmas before closing the lease, so the
    // coordinator can fold them into future grants and broadcast them to
    // the rest of the fleet. take_fresh() only returns locally learned
    // lemmas — remote ones were inserted fresh=false and are not echoed.
    // (Cuts already travelled on their unsat record frames.)
    if (learn_mode) {
      cert::Json::Array lemma_entries;
      checker::PropertyLearning& learn = learning_for(p);
      for (std::size_t lq = 0; lq < learn.queries.size(); ++lq) {
        for (smt::Lemma& lemma : learn.queries[lq].lemmas.take_fresh()) {
          cert::Json::Array premises;
          for (const std::string& premise : lemma.premises) premises.push_back(premise);
          lemma_entries.push_back(cert::Json::Object{
              {"q", static_cast<std::int64_t>(lq)}, {"premises", std::move(premises)}});
        }
      }
      if (!lemma_entries.empty()) {
        cert::Json frame =
            cert::Json::Object{{"type", "learn"},
                               {"p", static_cast<std::int64_t>(p)},
                               {"lemmas", std::move(lemma_entries)}};
        if (!conn.send(frame)) {
          report.note = "connection lost";
          break;
        }
      }
    }
    const checker::IncrementalStats after = solver.stats();
    cert::Json done = cert::Json::Object{{"type", "lease_done"},
                                         {"lease", lease_id},
                                         {"stats", stats_delta(before, after)}};
    if (learn_mode) {
      done.set("cut", lease_cut);
      done.set("hits", lease_hits);
      done.set("learned", lease_learned);
    }
    if (!conn.send(done)) {
      report.note = "connection lost";
      break;
    }
  }

  stop_heartbeat();
  conn.close();
  return report;
}

// True iff the attempt ended at the connection layer (the coordinator was
// unreachable or went away), the only failures a reconnect can cure.
// Semantic stops — protocol/model mismatch, malformed frames, abort,
// cancellation, a clean shutdown — are deterministic and terminal.
bool connection_level_failure(const WorkerReport& report) {
  if (report.completed || report.aborted) return false;
  return report.note.rfind("cannot connect", 0) == 0 ||
         report.note == "connection lost" ||
         report.note == "handshake send failed" ||
         report.note == "no welcome from coordinator" ||
         report.note.rfind("coordinator connection", 0) == 0;
}

}  // namespace

std::int64_t jittered_backoff_ms(std::int64_t base_ms, std::uint64_t seed, int attempt) {
  // splitmix64 over (seed, attempt): stateless, so the test can recompute
  // any draw. The jitter stays within ±25% of the base by construction.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(attempt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double unit = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0,1)
  const double factor = 0.75 + 0.5 * unit;                       // [0.75, 1.25)
  const auto jittered =
      static_cast<std::int64_t>(static_cast<double>(base_ms) * factor);
  return std::max<std::int64_t>(1, jittered);
}

WorkerReport run_worker(const WorkerOptions& options) {
  if (options.reconnect_seconds <= 0.0) return run_worker_attempt(options);

  const auto cancelled = [&] {
    return options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed);
  };
  // Jitter seed from the label (FNV-1a): deterministic per worker, different
  // across a fleet of distinctly labelled workers, so a coordinator restart
  // does not see the whole fleet reconnect in lockstep.
  std::uint64_t jitter_seed = 1469598103934665603ULL;
  for (const char ch : options.label) {
    jitter_seed ^= static_cast<unsigned char>(ch);
    jitter_seed *= 1099511628211ULL;
  }
  WorkerReport total;
  Stopwatch window;  // time since the last successful attempt start
  std::int64_t backoff_ms = 50;
  int attempt_index = 0;
  for (;;) {
    WorkerOptions attempt = options;
    // The inner connect-retry loop must not outlive the reconnect budget.
    attempt.connect_retry_seconds =
        std::min(options.connect_retry_seconds,
                 std::max(0.0, options.reconnect_seconds - window.seconds()));
    WorkerReport report = run_worker_attempt(attempt);
    total.leases += report.leases;
    total.records += report.records;
    total.completed = report.completed;
    total.aborted = report.aborted;
    total.note = report.note;
    if (!connection_level_failure(report) || cancelled()) return total;
    // An attempt that made it onto the coordinator resets the budget (and
    // the backoff): only *consecutive* unreachable time counts against it.
    if (report.leases > 0 || report.records > 0) {
      window.reset();
      backoff_ms = 50;
    }
    if (window.seconds() >= options.reconnect_seconds) return total;
    // Bounded jitter (±25%), clamped to the remaining budget so the total
    // sleep can never push the worker past its own reconnect window.
    const double remaining_budget_ms =
        (options.reconnect_seconds - window.seconds()) * 1000.0;
    const std::int64_t sleep_ms = std::min<std::int64_t>(
        jittered_backoff_ms(backoff_ms, jitter_seed, attempt_index++),
        std::max<std::int64_t>(1, static_cast<std::int64_t>(remaining_budget_ms)));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min<std::int64_t>(backoff_ms * 2, 2000);
  }
}

}  // namespace hv::dist
