#include "hv/dist/frame.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>

namespace hv::dist {

namespace {

using Clock = std::chrono::steady_clock;

// Remaining milliseconds of a deadline, clamped for poll(); -1 = infinite.
int remaining_ms(int timeout_ms, Clock::time_point start) {
  if (timeout_ms < 0) return -1;
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start).count();
  const auto left = static_cast<std::int64_t>(timeout_ms) - elapsed;
  return left > 0 ? static_cast<int>(left) : 0;
}

enum class ReadStatus { kOk, kEof, kTimeout, kError };

// Reads exactly `size` bytes under the shared deadline. EOF before the
// first byte is a clean close; the caller distinguishes it from a torn
// frame by what it had already read.
ReadStatus read_exact(int fd, void* buffer, std::size_t size, int timeout_ms,
                      Clock::time_point start) {
  auto* out = static_cast<char*>(buffer);
  std::size_t got = 0;
  while (got < size) {
    struct pollfd pfd = {fd, POLLIN, 0};
    const int left = remaining_ms(timeout_ms, start);
    if (left == 0) return ReadStatus::kTimeout;
    const int ready = ::poll(&pfd, 1, left);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
    if (ready == 0) return ReadStatus::kTimeout;
    const ssize_t n = ::read(fd, out + got, size - got);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return ReadStatus::kError;
    }
    if (n == 0) return ReadStatus::kEof;
    got += static_cast<std::size_t>(n);
  }
  return ReadStatus::kOk;
}

bool write_exact(int fd, const void* buffer, std::size_t size) {
  const auto* data = static_cast<const char*>(buffer);
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a worker writing to a dead coordinator must get EPIPE,
    // not a process-killing SIGPIPE. Falls back to write() for pipe fds
    // (tests use socketpairs, so the send() path is the one exercised).
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kClosed:
      return "closed";
    case FrameStatus::kTimeout:
      return "timeout";
    case FrameStatus::kTorn:
      return "torn";
    case FrameStatus::kBadMagic:
      return "bad-magic";
    case FrameStatus::kOversized:
      return "oversized";
    case FrameStatus::kError:
      return "error";
  }
  return "?";
}

bool write_frame(int fd, std::string_view payload) {
  char header[8];
  std::memcpy(header, kFrameMagic, 4);
  const auto size = static_cast<std::uint32_t>(payload.size());
  header[4] = static_cast<char>((size >> 24) & 0xff);
  header[5] = static_cast<char>((size >> 16) & 0xff);
  header[6] = static_cast<char>((size >> 8) & 0xff);
  header[7] = static_cast<char>(size & 0xff);
  if (payload.size() > kMaxFrameBytes) return false;
  if (!write_exact(fd, header, sizeof header)) return false;
  return write_exact(fd, payload.data(), payload.size());
}

FrameStatus read_frame(int fd, std::string* payload, int timeout_ms, std::size_t max_bytes) {
  payload->clear();
  const Clock::time_point start = Clock::now();
  char header[8];
  switch (read_exact(fd, header, 1, timeout_ms, start)) {
    case ReadStatus::kOk:
      break;
    case ReadStatus::kEof:
      return FrameStatus::kClosed;  // boundary EOF: clean departure
    case ReadStatus::kTimeout:
      return FrameStatus::kTimeout;
    case ReadStatus::kError:
      return FrameStatus::kError;
  }
  switch (read_exact(fd, header + 1, sizeof(header) - 1, timeout_ms, start)) {
    case ReadStatus::kOk:
      break;
    case ReadStatus::kEof:
      return FrameStatus::kTorn;
    case ReadStatus::kTimeout:
      return FrameStatus::kTimeout;
    case ReadStatus::kError:
      return FrameStatus::kError;
  }
  if (std::memcmp(header, kFrameMagic, 4) != 0) return FrameStatus::kBadMagic;
  const std::uint32_t size = (static_cast<std::uint32_t>(static_cast<unsigned char>(header[4]))
                              << 24) |
                             (static_cast<std::uint32_t>(static_cast<unsigned char>(header[5]))
                              << 16) |
                             (static_cast<std::uint32_t>(static_cast<unsigned char>(header[6]))
                              << 8) |
                             static_cast<std::uint32_t>(static_cast<unsigned char>(header[7]));
  if (size > max_bytes) return FrameStatus::kOversized;
  payload->resize(size);
  if (size == 0) return FrameStatus::kOk;
  switch (read_exact(fd, payload->data(), size, timeout_ms, start)) {
    case ReadStatus::kOk:
      return FrameStatus::kOk;
    case ReadStatus::kEof:
      payload->clear();
      return FrameStatus::kTorn;
    case ReadStatus::kTimeout:
      payload->clear();
      return FrameStatus::kTimeout;
    case ReadStatus::kError:
      payload->clear();
      return FrameStatus::kError;
  }
  payload->clear();
  return FrameStatus::kError;
}

}  // namespace hv::dist
