#include "hv/dist/protocol.h"

#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <utility>

#include "hv/cert/certificate.h"
#include "hv/dist/chaos.h"
#include "hv/spec/compile.h"
#include "hv/util/error.h"

namespace hv::dist {

namespace {

int parse_port(const std::string& text) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    throw InvalidArgument("dist: bad port '" + text + "'");
  }
  const int port = std::stoi(text);
  if (port <= 0 || port > 65535) throw InvalidArgument("dist: bad port '" + text + "'");
  return port;
}

}  // namespace

Address parse_address(const std::string& text) {
  Address address;
  if (text.rfind("unix:", 0) == 0) {
    address.unix_domain = true;
    address.path = text.substr(5);
    if (address.path.empty()) throw InvalidArgument("dist: empty unix socket path");
    sockaddr_un probe{};
    if (address.path.size() >= sizeof(probe.sun_path)) {
      throw InvalidArgument("dist: unix socket path too long: " + address.path);
    }
    return address;
  }
  std::string rest = text;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos) {
    throw InvalidArgument("dist: bad address '" + text +
                          "' (expected unix:/path or tcp:host:port)");
  }
  address.host = rest.substr(0, colon);
  address.port = parse_port(rest.substr(colon + 1));
  return address;
}

int listen_on(const Address& address) {
  if (address.unix_domain) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw Error("dist: socket() failed: " + std::string(std::strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, address.path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(address.path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw Error("dist: cannot bind " + address.path + ": " + why);
    }
    if (::listen(fd, 64) < 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw Error("dist: listen failed on " + address.path + ": " + why);
    }
    return fd;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* info = nullptr;
  const std::string port = std::to_string(address.port);
  const int rc = ::getaddrinfo(address.host.empty() ? nullptr : address.host.c_str(),
                               port.c_str(), &hints, &info);
  if (rc != 0) {
    throw Error("dist: cannot resolve " + address.host + ":" + port + ": " +
                ::gai_strerror(rc));
  }
  std::string why = "no usable address";
  for (addrinfo* it = info; it != nullptr; it = it->ai_next) {
    const int fd = ::socket(it->ai_family, it->ai_socktype, it->ai_protocol);
    if (fd < 0) {
      why = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, it->ai_addr, it->ai_addrlen) == 0 && ::listen(fd, 64) == 0) {
      ::freeaddrinfo(info);
      return fd;
    }
    why = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(info);
  throw Error("dist: cannot listen on " + address.host + ":" + port + ": " + why);
}

int connect_to(const Address& address) {
  if (address.unix_domain) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, address.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  const std::string port = std::to_string(address.port);
  const std::string host = address.host.empty() ? "127.0.0.1" : address.host;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &info) != 0) return -1;
  int fd = -1;
  for (addrinfo* it = info; it != nullptr; it = it->ai_next) {
    fd = ::socket(it->ai_family, it->ai_socktype, it->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, it->ai_addr, it->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(info);
  return fd;
}

Conn::Conn(int fd, bool subject_to_chaos) : fd_(fd) {
  if (!subject_to_chaos || fd < 0) return;
  const NetFaultPlan plan = net_fault_plan_from_env();
  if (!plan.armed()) return;
  // Each link gets its own PRNG stream; the serial keeps a multi-connection
  // process deterministic for a fixed seed.
  static std::atomic<std::uint64_t> link_serial{0};
  chaos_ = std::make_unique<ChaosLink>(plan, link_serial.fetch_add(1));
}

Conn::~Conn() { close(); }

bool Conn::send(const cert::Json& message) {
  if (fd_ < 0) return false;
  const std::string payload = message.to_string();
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (chaos_ != nullptr) return chaos_->send(fd_, payload);
  return write_frame(fd_, payload);
}

FrameStatus Conn::recv(cert::Json* message, int timeout_ms) {
  *message = cert::Json();
  if (fd_ < 0) return FrameStatus::kClosed;
  if (chaos_ != nullptr) {
    // Deliver any held (reordered) frame before blocking: a request/reply
    // exchange must never deadlock on its own held request.
    std::lock_guard<std::mutex> lock(write_mutex_);
    chaos_->flush(fd_);
  }
  std::string payload;
  const FrameStatus status = read_frame(fd_, &payload, timeout_ms);
  if (status != FrameStatus::kOk) return status;
  try {
    *message = cert::Json::parse(payload);
  } catch (const Error&) {
    // A frame that is not JSON is a protocol violation, same class as a
    // corrupted length: report it as an error, not a message.
    return FrameStatus::kError;
  }
  return FrameStatus::kOk;
}

bool Conn::readable() const {
  if (fd_ < 0) return true;  // recv() will report kClosed immediately
  struct pollfd pfd = {fd_, POLLIN, 0};
  return ::poll(&pfd, 1, 0) > 0;
}

void Conn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Conn::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::vector<spec::Property> resolve_properties(const ta::ThresholdAutomaton& ta,
                                               const std::vector<PropertySpec>& specs) {
  std::vector<spec::Property> properties;
  properties.reserve(specs.size());
  std::vector<spec::Property> bundled;
  bool bundled_loaded = false;
  for (const PropertySpec& spec : specs) {
    if (!spec.bundled) {
      properties.push_back(spec::compile(ta, spec.name, spec.formula));
      continue;
    }
    if (!bundled_loaded) {
      bundled = cert::bundled_properties(ta, /*table2_defaults=*/false);
      bundled_loaded = true;
    }
    bool found = false;
    for (const spec::Property& candidate : bundled) {
      if (candidate.name == spec.name) {
        properties.push_back(candidate);
        found = true;
        break;
      }
    }
    if (!found) {
      throw InvalidArgument("dist: automaton '" + ta.name() + "' has no bundled property '" +
                            spec.name + "'");
    }
  }
  return properties;
}

cert::Json specs_to_json(const std::vector<PropertySpec>& specs) {
  cert::Json::Array out;
  for (const PropertySpec& spec : specs) {
    out.push_back(cert::Json::Object{
        {"name", spec.name},
        {"formula", spec.formula},
        {"bundled", spec.bundled},
    });
  }
  return out;
}

std::vector<PropertySpec> specs_from_json(const cert::Json& json) {
  std::vector<PropertySpec> specs;
  for (const cert::Json& entry : json.as_array()) {
    PropertySpec spec;
    spec.name = entry.at("name").as_string();
    spec.formula = entry.at("formula").as_string();
    spec.bundled = entry.at("bundled").as_bool();
    specs.push_back(std::move(spec));
  }
  return specs;
}

cert::Json options_to_json(const checker::CheckOptions& options) {
  return cert::Json::Object{
      {"max_schemas", options.enumeration.max_schemas},
      {"prune_implications", options.enumeration.prune_implications},
      {"prune_dead_unlocks", options.enumeration.prune_dead_unlocks},
      {"timeout_seconds", options.timeout_seconds},
      {"branch_budget", options.branch_budget},
      {"incremental", options.incremental},
      {"property_directed_pruning", options.property_directed_pruning},
      {"validate_counterexamples", options.validate_counterexamples},
      {"minimize_counterexamples", options.minimize_counterexamples},
      {"certify", options.certify},
      {"schema_timeout_seconds", options.schema_timeout_seconds},
      {"pivot_budget", options.pivot_budget},
      {"memory_budget_mb", options.memory_budget_mb},
      {"retry_fresh", options.retry_fresh},
      {"lemmas", options.lemmas},
  };
}

checker::CheckOptions options_from_json(const cert::Json& json) {
  checker::CheckOptions options;
  options.enumeration.max_schemas = json.at("max_schemas").as_int();
  options.enumeration.prune_implications = json.at("prune_implications").as_bool();
  options.enumeration.prune_dead_unlocks = json.at("prune_dead_unlocks").as_bool();
  options.timeout_seconds = json.at("timeout_seconds").as_double();
  options.branch_budget = json.at("branch_budget").as_int();
  options.incremental = json.at("incremental").as_bool();
  options.property_directed_pruning = json.at("property_directed_pruning").as_bool();
  options.validate_counterexamples = json.at("validate_counterexamples").as_bool();
  options.minimize_counterexamples = json.at("minimize_counterexamples").as_bool();
  options.certify = json.at("certify").as_bool();
  options.schema_timeout_seconds = json.at("schema_timeout_seconds").as_double();
  options.pivot_budget = json.at("pivot_budget").as_int();
  options.memory_budget_mb = json.at("memory_budget_mb").as_int();
  options.retry_fresh = json.at("retry_fresh").as_bool();
  // Tolerant read: a pre-upgrade coordinator omits the field; learning is
  // additionally gated by the hello/welcome feature negotiation, so the
  // default here only matters to non-dist callers of this converter.
  const cert::Json* lemmas = json.find("lemmas");
  options.lemmas = lemmas == nullptr || lemmas->as_bool();
  return options;
}

cert::Json counterexample_to_json(const checker::Counterexample& cex) {
  cert::Json::Array params;
  for (const auto& [var, value] : cex.params) {
    params.push_back(cert::Json::Array{static_cast<std::int64_t>(var), value});
  }
  cert::Json::Array counters;
  for (const std::int64_t c : cex.initial.counters) counters.push_back(c);
  cert::Json::Array shared;
  for (const std::int64_t s : cex.initial.shared) shared.push_back(s);
  cert::Json::Array steps;
  for (const checker::TraceStep& step : cex.steps) {
    steps.push_back(cert::Json::Array{static_cast<std::int64_t>(step.rule), step.factor});
  }
  return cert::Json::Object{
      {"property", cex.property},
      {"query_description", cex.query_description},
      {"params", std::move(params)},
      {"counters", std::move(counters)},
      {"shared", std::move(shared)},
      {"steps", std::move(steps)},
  };
}

checker::Counterexample counterexample_from_json(const cert::Json& json) {
  checker::Counterexample cex;
  cex.property = json.at("property").as_string();
  cex.query_description = json.at("query_description").as_string();
  for (const cert::Json& entry : json.at("params").as_array()) {
    const cert::Json::Array& pair = entry.as_array();
    if (pair.size() != 2) throw InvalidArgument("dist: malformed counterexample params");
    cex.params[static_cast<ta::VarId>(pair[0].as_int())] = pair[1].as_int();
  }
  for (const cert::Json& c : json.at("counters").as_array()) {
    cex.initial.counters.push_back(c.as_int());
  }
  for (const cert::Json& s : json.at("shared").as_array()) {
    cex.initial.shared.push_back(s.as_int());
  }
  for (const cert::Json& entry : json.at("steps").as_array()) {
    const cert::Json::Array& pair = entry.as_array();
    if (pair.size() != 2) throw InvalidArgument("dist: malformed counterexample steps");
    cex.steps.push_back({static_cast<ta::RuleId>(pair[0].as_int()), pair[1].as_int()});
  }
  return cex;
}

cert::Json model_values_to_json(const std::vector<std::pair<std::string, BigInt>>& values) {
  cert::Json::Array out;
  for (const auto& [name, value] : values) {
    out.push_back(cert::Json::Array{name, value.to_string()});
  }
  return out;
}

std::vector<std::pair<std::string, BigInt>> model_values_from_json(const cert::Json& json) {
  std::vector<std::pair<std::string, BigInt>> values;
  for (const cert::Json& entry : json.as_array()) {
    const cert::Json::Array& pair = entry.as_array();
    if (pair.size() != 2) throw InvalidArgument("dist: malformed model values");
    values.emplace_back(pair[0].as_string(), BigInt::from_string(pair[1].as_string()));
  }
  return values;
}

}  // namespace hv::dist
