#include "hv/dist/chaos.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "hv/dist/frame.h"

namespace hv::dist {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double unit_draw(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Writes a frame header declaring the full payload length, then only the
/// first half of the payload, then kills the stream: the receiver sees a
/// torn frame (EOF mid-message), exactly like a peer dying mid-send.
void send_truncated(int fd, std::string_view payload) {
  unsigned char header[8];
  std::memcpy(header, kFrameMagic, 4);
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  header[4] = static_cast<unsigned char>((length >> 24) & 0xff);
  header[5] = static_cast<unsigned char>((length >> 16) & 0xff);
  header[6] = static_cast<unsigned char>((length >> 8) & 0xff);
  header[7] = static_cast<unsigned char>(length & 0xff);
  (void)::send(fd, header, sizeof(header), MSG_NOSIGNAL);
  (void)::send(fd, payload.data(), payload.size() / 2, MSG_NOSIGNAL);
  ::shutdown(fd, SHUT_RDWR);
}

}  // namespace

NetFaultPlan net_fault_plan_from_env() {
  NetFaultPlan plan;
  const char* kind = std::getenv("HV_NET_FAULT_KIND");
  if (kind == nullptr) return plan;
  if (std::strcmp(kind, "delay") == 0) {
    plan.kind = NetFaultKind::kDelay;
  } else if (std::strcmp(kind, "drop") == 0) {
    plan.kind = NetFaultKind::kDrop;
  } else if (std::strcmp(kind, "dup") == 0) {
    plan.kind = NetFaultKind::kDup;
  } else if (std::strcmp(kind, "reorder") == 0) {
    plan.kind = NetFaultKind::kReorder;
  } else if (std::strcmp(kind, "truncate") == 0) {
    plan.kind = NetFaultKind::kTruncate;
  } else if (std::strcmp(kind, "partition") == 0) {
    plan.kind = NetFaultKind::kPartition;
  } else if (std::strcmp(kind, "mix") == 0) {
    plan.kind = NetFaultKind::kMix;
  } else {
    return plan;  // unknown kind: stay disarmed
  }
  plan.rate = 0.02;
  if (const char* rate = std::getenv("HV_NET_FAULT_RATE")) plan.rate = std::atof(rate);
  if (plan.rate < 0.0) plan.rate = 0.0;
  if (plan.rate > 1.0) plan.rate = 1.0;
  if (const char* seed = std::getenv("HV_NET_FAULT_SEED")) {
    plan.seed = std::strtoull(seed, nullptr, 10);
  }
  return plan;
}

ChaosLink::ChaosLink(const NetFaultPlan& plan, std::uint64_t link_serial) : plan_(plan) {
  std::uint64_t mix = plan.seed;
  for (std::uint64_t i = 0; i <= link_serial; ++i) splitmix64(mix);
  state_ = mix;
}

NetFaultKind ChaosLink::next_fault() {
  if (!plan_.armed()) return NetFaultKind::kNone;
  if (unit_draw(state_) >= plan_.rate) return NetFaultKind::kNone;
  if (plan_.kind != NetFaultKind::kMix) return plan_.kind;
  static constexpr NetFaultKind kMenu[] = {
      NetFaultKind::kDelay,   NetFaultKind::kDrop,     NetFaultKind::kDup,
      NetFaultKind::kReorder, NetFaultKind::kTruncate, NetFaultKind::kPartition,
  };
  return kMenu[splitmix64(state_) % (sizeof(kMenu) / sizeof(kMenu[0]))];
}

bool ChaosLink::send(int fd, std::string_view payload) {
  if (partitioned_) return true;  // swallowed; the peer will time us out
  bool duplicate = false;
  switch (next_fault()) {
    case NetFaultKind::kNone:
    case NetFaultKind::kMix:
      break;
    case NetFaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(1 + static_cast<int>(splitmix64(state_) % 25)));
      break;
    case NetFaultKind::kDrop:
      // A reliable stream can only lose a frame by dying with it.
      ::shutdown(fd, SHUT_RDWR);
      return true;
    case NetFaultKind::kDup:
      duplicate = true;
      break;
    case NetFaultKind::kReorder:
      if (!held_) {
        held_ = std::string(payload);
        return true;  // delivered later, after the next frame overtakes it
      }
      break;  // already holding one frame; deliver normally
    case NetFaultKind::kTruncate:
      send_truncated(fd, payload);
      return true;
    case NetFaultKind::kPartition:
      partitioned_ = true;
      ::shutdown(fd, SHUT_WR);  // the peer sees a prompt EOF, not a stall
      return true;
  }
  bool ok = write_frame(fd, payload);
  if (duplicate) ok = write_frame(fd, payload) && ok;
  if (held_) {
    ok = write_frame(fd, *held_) && ok;
    held_.reset();
  }
  return ok;
}

void ChaosLink::flush(int fd) {
  if (!held_ || partitioned_) return;
  (void)write_frame(fd, *held_);
  held_.reset();
}

}  // namespace hv::dist
