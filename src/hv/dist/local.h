// Convenience single-machine mode: `hvc check --workers N` forks N worker
// processes connected to an in-process coordinator over a private unix
// socket. Process isolation is the point — a worker taken down by a fault
// (bad_alloc, injected abort, a SIGKILL from outside) costs its current
// lease, not the run.
#ifndef HV_DIST_LOCAL_H
#define HV_DIST_LOCAL_H

#include <string>
#include <vector>

#include "hv/checker/result.h"
#include "hv/dist/coordinator.h"

namespace hv::dist {

/// Runs the coordinator in this process and `worker_count` forked worker
/// processes, all over a unix socket under the journal's directory (or
/// /tmp). Blocks until the run completes; reaps every child. Results are
/// verdict-identical to checker::check_properties on the same inputs.
std::vector<checker::PropertyResult> check_distributed_local(
    const std::string& model_text, const std::vector<PropertySpec>& specs, int worker_count,
    const DistOptions& options, DistStats* stats = nullptr);

}  // namespace hv::dist

#endif  // HV_DIST_LOCAL_H
