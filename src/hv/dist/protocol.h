// Wire protocol of the distributed verification service: addresses,
// connection handling and the JSON message vocabulary shared by the
// coordinator (coordinator.h) and the worker (worker.h).
//
// Addresses are "unix:/path/to.sock" or "tcp:host:port" (a bare
// "host:port" is accepted as TCP). Every message is one JSON object in one
// frame (frame.h) with a "type" field:
//
//   worker -> coordinator
//     hello      {protocol, label, features[]?}
//     next       {}                     request a lease (pull model)
//     record     {lease, property, cursor, verdict, length, pivots,
//                 retries, note, cut?, proof?, model?} one settled schema;
//                 cut = subtree-cut prefix length of an unsat refutation
//     sat        {lease, property, cursor, length, pivots, retries,
//                 validation_error, counterexample?, model?}
//     learn      {p, lemmas[]?}           freshly pooled Farkas lemmas
//                                         (cuts ride on record frames)
//     lease_done {lease, stats{...}, cut?, hits?, learned?}
//     heartbeat  {}                     liveness only; renews the deadline
//
//   coordinator -> worker
//     welcome    {protocol, model_hash, model_text, properties[], options{},
//                 lease_timeout?, features[]?}
//     lease      {lease, property, query, prefix[], extensions, skip[],
//                 cuts[]?, lemmas[]?}
//     wait       {ms}                   nothing grantable right now
//     abandon    {lease}               stop that lease: the property is
//                                      settled or the lease reassigned; the
//                                      worker closes it with lease_done
//     learn      {p, cuts[]?, lemmas[]?}  facts folded from other workers
//     shutdown   {reason}               run over; worker disconnects. Also
//                                      sent *instead of* welcome when the
//                                      worker's label is quarantined or
//                                      banned for this run (coordinator.h)
//
// The pull model keeps the coordinator passive between frames: a worker
// that dies simply stops asking, and *any* frame (heartbeats included)
// renews its lease deadline, so only a genuinely dead or wedged worker is
// expropriated.
//
// The coordinator does not trust worker frames. A record or sat frame must
// cite a lease that was actually granted on its own connection, whose
// (property, query) matches and whose subtree covers the reported cursor;
// a definitive verdict that conflicts with an already-settled one is
// equally hostile. Any violation costs the connection (never the run) and
// feeds the sender's health score. The welcome's `lease_timeout` (seconds,
// read tolerantly) lets the worker refuse heartbeat periods that the
// coordinator would mistake for death.
//
// Feature negotiation: the protocol version stays fixed; optional frame
// kinds are gated by "features" arrays in hello/welcome instead. Both sides
// read the field tolerantly (absent = no optional features), and a side only
// *sends* an optional frame kind ("learn", plus the learn-bearing fields of
// lease and lease_done) when both peers advertised it. A pre-upgrade worker
// therefore degrades to no-lemma solving instead of being dropped for an
// unknown frame type; a pre-upgrade coordinator never sees a learn frame
// or a record "cut" field (records are read field-tolerantly).
//
//   learn cuts entries:   {q, prefix[]}       — the chain prefix is unsat,
//                                               every schema extending it too
//   learn lemmas entries: {q, premises[]}     — a pooled Farkas refutation,
//                                               keyed by constraint content
//   lease_done cut/hits/learned: schemas skipped by cuts, lemma-pool hits,
//                                and lemmas learned while holding the lease
#ifndef HV_DIST_PROTOCOL_H
#define HV_DIST_PROTOCOL_H

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hv/cert/json.h"
#include "hv/checker/parameterized.h"
#include "hv/checker/result.h"
#include "hv/dist/frame.h"
#include "hv/spec/query.h"
#include "hv/ta/automaton.h"

namespace hv::dist {

class ChaosLink;

/// A parsed listen/connect address.
struct Address {
  bool unix_domain = false;
  std::string path;  // unix: socket path
  std::string host;  // tcp: host (empty = all interfaces when listening)
  int port = 0;      // tcp
};

/// Parses "unix:/path", "tcp:host:port" or "host:port". Throws
/// hv::InvalidArgument on anything else.
Address parse_address(const std::string& text);

/// Binds and listens; returns the listening fd. Throws hv::Error on
/// failure (address in use, bad path, ...). Unix sockets unlink a stale
/// path first.
int listen_on(const Address& address);

/// Connects; returns the fd or -1 (no throw — workers retry).
int connect_to(const Address& address);

/// One protocol connection: a frame stream carrying JSON objects. Reads
/// are single-threaded per connection; writes are serialized internally so
/// a worker's heartbeat thread can share the fd with its lease loop.
class Conn {
 public:
  /// `subject_to_chaos` opts this connection into the deterministic
  /// network-fault plan from the environment (chaos.h). Only the
  /// coordinator/worker data path passes true; the daemon's tenant RPC and
  /// raw test fixtures stay fault-free.
  explicit Conn(int fd, bool subject_to_chaos = false);
  ~Conn();
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }

  /// Serializes and sends one message. Returns false on any send failure.
  bool send(const cert::Json& message);

  /// Receives one message. Returns the frame status; on kOk `*message` is
  /// the parsed object. A frame that is not valid JSON returns kBadMagic's
  /// cousin: status kOk is only returned for parseable payloads, anything
  /// else comes back as kError with the message left null.
  FrameStatus recv(cert::Json* message, int timeout_ms);

  /// True when at least one byte is waiting, i.e. a frame is in flight (or
  /// the peer closed). Never consumes data — safe to poll mid-lease.
  bool readable() const;

  /// Closes the fd (idempotent).
  void close();
  /// shutdown(2) both directions without closing: unblocks a reader in
  /// another thread.
  void shutdown();

 private:
  int fd_ = -1;
  std::mutex write_mutex_;
  std::unique_ptr<ChaosLink> chaos_;  // armed only via the env fault plan
};

// --- property resolution ----------------------------------------------------

/// How one property travels in the welcome message. Workers recompile it
/// against their own parse of the shipped model text, so both sides check
/// the *same* compiled queries ("ltl": compile `formula`; bundled: look
/// `name` up in the model's bundled property set).
struct PropertySpec {
  std::string name;
  std::string formula;   // ltl source; informational when bundled
  bool bundled = false;
};

/// Resolves specs into compiled properties, identically on the coordinator
/// and on every worker. Throws hv::InvalidArgument on an unknown bundled
/// name or an uncompilable formula.
std::vector<spec::Property> resolve_properties(const ta::ThresholdAutomaton& ta,
                                               const std::vector<PropertySpec>& specs);

cert::Json specs_to_json(const std::vector<PropertySpec>& specs);
std::vector<PropertySpec> specs_from_json(const cert::Json& json);

// --- wire conversions -------------------------------------------------------

/// Solver settings a worker needs to reproduce the coordinator's checking
/// semantics; the subset of checker::CheckOptions that travels.
cert::Json options_to_json(const checker::CheckOptions& options);
checker::CheckOptions options_from_json(const cert::Json& json);

/// Counterexamples travel by raw ids (rule, variable, location indices);
/// the model-hash handshake guarantees both sides numbered the automaton
/// identically.
cert::Json counterexample_to_json(const checker::Counterexample& cex);
checker::Counterexample counterexample_from_json(const cert::Json& json);

/// Certify-mode model values ([name, integer-string] pairs).
cert::Json model_values_to_json(const std::vector<std::pair<std::string, BigInt>>& values);
std::vector<std::pair<std::string, BigInt>> model_values_from_json(const cert::Json& json);

}  // namespace hv::dist

#endif  // HV_DIST_PROTOCOL_H
