// Distributed verification coordinator: shards the schema space of every
// property into chain-subtree leases (the same DFS partition the in-process
// pool uses), hands leases to workers over the frame protocol, and merges
// their streamed verdict records into the usual PropertyResult / journal /
// certificate paths.
//
// Fault model, in one place:
//   * worker death (EOF, torn frame, SIGKILL) or silence beyond the lease
//     timeout: its active lease returns to the pending pool and is granted
//     to the next worker that asks;
//   * duplicated work after a reassignment (the dead worker had already
//     streamed part of the subtree): records are deduplicated by
//     (property, cursor), so replays are idempotent — and the reassigned
//     lease ships the already-settled cursors as a skip list, so the new
//     worker does not even re-solve them;
//   * coordinator death: every merged record was appended to the crash-safe
//     journal; restarting with --resume replays the journal and leases only
//     the remainder (sat records are re-solved, as in-process resume does);
//   * a worker that lies about the model is impossible by construction: the
//     welcome handshake compares model content hashes before any lease.
#ifndef HV_DIST_COORDINATOR_H
#define HV_DIST_COORDINATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "hv/checker/parameterized.h"
#include "hv/checker/result.h"
#include "hv/dist/protocol.h"

namespace hv::dist {

struct DistOptions {
  /// Solver settings shipped to every worker (the `workers` field is
  /// ignored: parallelism is the number of connected worker processes).
  checker::CheckOptions check;
  /// A worker whose connection stays silent this long loses its lease
  /// (heartbeats count as activity, so only dead or wedged workers hit it).
  double lease_timeout_seconds = 30.0;
  /// Partition granularity hint: aim for at least 4 leases per expected
  /// worker so the fleet load-balances.
  int expected_workers = 2;
};

struct DistStats {
  std::int64_t workers_joined = 0;
  std::int64_t workers_lost = 0;
  std::int64_t leases_granted = 0;
  /// Leases returned to the pool after their worker died or timed out.
  std::int64_t leases_reassigned = 0;
};

/// Serves one verification run at `listen_address` ("unix:/path" or
/// "tcp:host:port") until every lease of every property is settled (or the
/// run stops: counterexamples, timeout, cancellation, schema budget).
/// Returns one PropertyResult per spec, byte-compatible with
/// checker::check_properties on the same model and options. Blocks until
/// workers finish; with no workers it waits until timeout or cancellation.
std::vector<checker::PropertyResult> serve(const std::string& model_text,
                                           const std::vector<PropertySpec>& specs,
                                           const std::string& listen_address,
                                           const DistOptions& options,
                                           DistStats* stats = nullptr);

/// Same, on an already-listening socket (fork-local mode binds before
/// forking its workers so no child can win the race). Takes ownership of
/// `listen_fd`.
std::vector<checker::PropertyResult> serve_fd(int listen_fd, const std::string& model_text,
                                              const std::vector<PropertySpec>& specs,
                                              const DistOptions& options,
                                              DistStats* stats = nullptr);

}  // namespace hv::dist

#endif  // HV_DIST_COORDINATOR_H
