// Distributed verification coordinator: shards the schema space of every
// property into chain-subtree leases (the same DFS partition the in-process
// pool uses), hands leases to workers over the frame protocol, and merges
// their streamed verdict records into the usual PropertyResult / journal /
// certificate paths. With several live properties, grants are fair-shared:
// a "next" request gets the pending lease whose property currently has the
// fewest active leases (ties to the lowest index, which preserves the
// single-property first-fit order exactly), so one fleet multiplexes all
// properties instead of draining them one at a time.
//
// Fault model, in one place:
//   * worker death (EOF, torn frame, SIGKILL) or silence beyond the lease
//     timeout: its active lease returns to the pending pool and is granted
//     to the next worker that asks;
//   * duplicated work after a reassignment (the dead worker had already
//     streamed part of the subtree): records are deduplicated by
//     (property, cursor), so replays are idempotent — and the reassigned
//     lease ships the already-settled cursors as a skip list, so the new
//     worker does not even re-solve them;
//   * coordinator death: every merged record was appended to the crash-safe
//     journal; restarting with --resume replays the journal and leases only
//     the remainder (sat records are re-solved, as in-process resume does);
//   * a worker that lies about the model is impossible by construction: the
//     welcome handshake compares model content hashes before any lease;
//   * a worker that lies about *verdicts* (or speaks garbage) is a
//     Byzantine peer. Every record/sat frame must cite a lease granted on
//     its own connection whose subtree covers the reported cursor, and a
//     definitive verdict conflicting with an already-settled one is
//     rejected — violations cost the connection and feed a per-label
//     health score (spot-check failures, hostile frames, chronic lease
//     timeouts, reconnect churn) that escalates from cool-down quarantine
//     to a permanent ban for the run. With spot_check_rate > 0 the
//     coordinator re-solves a deterministic sample of reported schemas
//     in-process (sat claims are always re-solved); a disagreement bans
//     the worker, revokes everything it contributed (journaled as
//     "revoked" records so --resume re-solves them) and re-pends its
//     leases. When the fleet is exhausted — everyone banned, quarantined
//     or gone — the coordinator degrades to solving pending leases itself:
//     the run slows down, it never wrongs. Verdict lying that slips past
//     an unarmed spot-checker is still caught offline by --certify +
//     `hvc audit`, which re-validates every Farkas leaf.
#ifndef HV_DIST_COORDINATOR_H
#define HV_DIST_COORDINATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "hv/checker/parameterized.h"
#include "hv/checker/result.h"
#include "hv/dist/protocol.h"

namespace hv::dist {

struct DistOptions {
  /// Solver settings shipped to every worker (the `workers` field is
  /// ignored: parallelism is the number of connected worker processes).
  checker::CheckOptions check;
  /// A worker whose connection stays silent this long loses its lease
  /// (heartbeats count as activity, so only dead or wedged workers hit it).
  double lease_timeout_seconds = 30.0;
  /// Partition granularity hint: aim for at least 4 leases per expected
  /// worker so the fleet load-balances.
  int expected_workers = 2;
  /// Fraction of worker-reported verdicts the coordinator re-solves
  /// in-process (deterministically sampled by cursor content; sat claims
  /// are always re-checked when armed). 0 disables spot-checking. Rejected
  /// under --certify, where the auditor already re-validates every
  /// verdict. Arming it also disables cross-schema learning for the run: a
  /// forged lemma or subtree cut from an untrusted worker would poison
  /// honest workers in ways no per-record check can see.
  double spot_check_rate = 0.0;
  /// Mixed into the spot-check sampling hash, so repeated runs can sample
  /// different subsets of the schema space.
  std::uint64_t spot_check_seed = 0;
  /// The coordinator forked its own fleet (fork-local mode): nobody else
  /// will ever connect, so graceful degradation arms even if no worker
  /// managed to join at all (e.g. every child lost its handshake to
  /// injected network chaos). A serve-mode coordinator keeps waiting
  /// instead — its workers may legitimately arrive much later.
  bool self_hosted_fleet = false;
};

struct DistStats {
  std::int64_t workers_joined = 0;
  std::int64_t workers_lost = 0;
  std::int64_t leases_granted = 0;
  /// Leases returned to the pool after their worker died or timed out.
  std::int64_t leases_reassigned = 0;
  /// Byzantine-defense accounting.
  std::int64_t spot_checks = 0;
  std::int64_t spot_check_failures = 0;
  /// Frames that violated the lease/verdict trust rules (each costs its
  /// connection).
  std::int64_t hostile_frames = 0;
  /// Lease expropriations caused by silence beyond the lease timeout.
  std::int64_t lease_timeouts = 0;
  /// Quarantine cool-downs imposed / permanent bans issued (per label).
  std::int64_t workers_quarantined = 0;
  std::int64_t workers_banned = 0;
  /// Leases the coordinator solved in-process after the fleet was
  /// exhausted (graceful degradation).
  std::int64_t leases_self_solved = 0;
};

/// Serves one verification run at `listen_address` ("unix:/path" or
/// "tcp:host:port") until every lease of every property is settled (or the
/// run stops: counterexamples, timeout, cancellation, schema budget).
/// Returns one PropertyResult per spec, byte-compatible with
/// checker::check_properties on the same model and options. Blocks until
/// workers finish; with no workers it waits until timeout or cancellation
/// (once at least one worker has joined, an exhausted fleet degrades to
/// in-process solving instead of waiting forever).
std::vector<checker::PropertyResult> serve(const std::string& model_text,
                                           const std::vector<PropertySpec>& specs,
                                           const std::string& listen_address,
                                           const DistOptions& options,
                                           DistStats* stats = nullptr);

/// Same, on an already-listening socket (fork-local mode binds before
/// forking its workers so no child can win the race). Takes ownership of
/// `listen_fd`.
std::vector<checker::PropertyResult> serve_fd(int listen_fd, const std::string& model_text,
                                              const std::vector<PropertySpec>& specs,
                                              const DistOptions& options,
                                              DistStats* stats = nullptr);

}  // namespace hv::dist

#endif  // HV_DIST_COORDINATOR_H
