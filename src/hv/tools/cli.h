// The `hvc` command-line front end, as a testable library: every command
// takes parsed arguments and writes to caller-supplied streams.
//
//   hvc check <model.ta> --prop "<ltl>" [--name N] [--timeout S]
//                        [--max-schemas K] [--workers W] [--no-pruning]
//   hvc explicit <model.ta> --prop "<ltl>" --params n=4,t=1,f=1
//                        [--max-states K]
//   hvc dot <model.ta>
//   hvc print <model.ta>
//   hvc redbelly [--naive]
//
// `check` verifies the property for every parameter valuation admitted by
// the model's resilience condition; `explicit` checks one valuation by
// state enumeration; `dot` renders Graphviz; `print` round-trips the model
// through the parser (a lint); `redbelly` runs the paper's full pipeline.
#ifndef HV_TOOLS_CLI_H
#define HV_TOOLS_CLI_H

#include <iosfwd>
#include <string>
#include <vector>

namespace hv::tools {

/// Entry point used by main() and by the tests. Returns the process exit
/// code: 0 success/holds, 1 property violated or not fully verified,
/// 2 usage or input error, 3 inconclusive (budget/timeout).
int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

/// Registers SIGINT/SIGTERM handlers that request a graceful stop of the
/// running check: the checker flushes its progress journal and reports the
/// partial results (verdict unknown, note "interrupted"). Called by the hvc
/// binary's main(); tests drive cancellation through CheckOptions::cancel
/// directly.
void install_interrupt_handlers();

}  // namespace hv::tools

#endif  // HV_TOOLS_CLI_H
