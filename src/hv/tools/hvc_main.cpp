#include <iostream>
#include <string>
#include <vector>

#include "hv/tools/cli.h"

int main(int argc, char** argv) {
  hv::tools::install_interrupt_handlers();
  std::vector<std::string> args(argv + 1, argv + argc);
  return hv::tools::run_cli(args, std::cout, std::cerr);
}
