#include "hv/tools/cli.h"

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "hv/cert/audit.h"
#include "hv/cert/emit.h"
#include "hv/cert/json.h"
#include "hv/checker/explicit_checker.h"
#include "hv/checker/parameterized.h"
#include "hv/dist/coordinator.h"
#include "hv/dist/local.h"
#include "hv/dist/worker.h"
#include "hv/pipeline/certify.h"
#include "hv/pipeline/holistic.h"
#include "hv/service/client.h"
#include "hv/service/daemon.h"
#include "hv/service/response.h"
#include "hv/sim/lemma7.h"
#include "hv/sim/runner.h"
#include "hv/spec/compile.h"
#include "hv/ta/dot.h"
#include "hv/ta/parser.h"
#include "hv/util/error.h"
#include "hv/util/text.h"

namespace hv::tools {

namespace {

constexpr const char* kUsage = R"(usage:
  hvc check <model.ta> [--prop "<ltl>"]... [--name N]... [--timeout S]
                       [--max-schemas K] [--workers N] [--threads W]
                       [--no-pruning] [--no-incremental] [--no-lemmas]
                       [--json] [--certify] [--cert-out cert.json]
                       [--journal run.jsonl] [--resume run.jsonl]
                       [--schema-timeout S] [--pivot-budget K]
                       [--memory-budget MB] [--no-retry]
       (--certify emits a proof-carrying certificate; without --prop it
        checks the model's bundled default properties, e.g. the five
        Table-2 properties of the simplified consensus automaton.
        --workers N (N >= 2) forks N local worker *processes* sharding the
        schema space over a private socket — a crashed worker costs one
        lease, not the run; --threads W instead uses W in-process threads.
        --spot-check-rate R applies the same verdict spot-checking as hvc
        serve to the forked fleet.
        --journal appends settled schema verdicts to a crash-safe JSONL
        file; --resume skips the schemas an earlier journal settled and
        keeps appending to it. --schema-timeout/--pivot-budget are
        per-schema watchdogs and --memory-budget a soft RSS cap: a schema
        that trips one is retried on a fresh solver, then recorded as
        unknown — the run continues. SIGINT/SIGTERM flush the journal and
        print the partial results. --no-lemmas (or HV_NO_LEMMAS=1) disables
        cross-schema learning — the Farkas lemma pool and core-based
        subtree cuts; verdicts are identical either way. HV_FAULT_KIND/
        _AT/_EVERY/_STALL_MS arm deterministic fault injection for testing.
        --prop may repeat; the i-th --name names the i-th property.)
  hvc serve <model.ta> --listen <addr> [--prop "<ltl>"]... [--name N]...
                       [--expected-workers N] [--lease-timeout S]
                       [--spot-check-rate R] [--spot-check-seed S]
                       [... same checking flags as hvc check ...]
       (distributed coordinator: shards the schema space into subtree
        leases and merges verdicts streamed by hvc work processes. <addr>
        is unix:/path or tcp:host:port. Without --prop it checks the
        model's bundled default properties. A worker that dies loses its
        lease to the next worker; kill -9 the coordinator and restart with
        --resume to continue from the journal. --spot-check-rate R re-solves
        a deterministic fraction R of worker-reported verdicts in-process
        (sat claims always): a disagreement bans the worker and revokes its
        records. Hostile frames, chronic lease timeouts and reconnect churn
        feed a per-label health score that escalates from cool-down
        quarantine to a permanent ban; with the fleet exhausted the
        coordinator solves the remainder itself. Incompatible with
        --certify, where hvc audit already re-validates every verdict.
        HV_NET_FAULT_KIND/_RATE/_SEED (delay, drop, dup, reorder, truncate,
        partition, mix) arm deterministic network-fault injection on every
        coordinator/worker connection for testing.)
  hvc work --connect <addr> [--label NAME] [--retry S] [--reconnect S]
           [--heartbeat-ms MS]
       (distributed worker: pulls schema subtree leases from an hvc serve
        coordinator and streams back per-schema verdicts; runs until the
        coordinator sends shutdown. The model and properties arrive over
        the wire — nothing is configured locally. --reconnect S keeps
        retrying lost/refused connections with jittered exponential backoff
        for up to S idle seconds, so a worker fleet survives coordinator
        restarts. --heartbeat-ms must stay under half the coordinator's
        lease timeout (refused otherwise). HV_LIE_VERDICTS=1 makes the
        worker forge sat verdicts — an adversarial test hook for the
        coordinator's spot-checking.)
  hvc daemon --listen <addr> --state <dir> [--cache-mb MB] [--job-workers N]
             [--max-running N] [--tenant-max-queued N]
             [--tenant-max-running N] [--tenant-schema-budget K]
             [--spot-check-rate R]
       (multi-tenant verification service: accepts hvc submit jobs from
        many clients, schedules them fairly under per-tenant quotas, and
        answers repeated submissions from a content-addressed result cache
        with zero schemas solved. The queue lives in <dir> as a crash-safe
        event log plus one schema journal per job: kill -9 the daemon and
        restart it with the same --state to resume queued and running jobs
        and re-serve finished ones from the cache. SIGINT/SIGTERM shut
        down gracefully (interrupted jobs re-run on the next start).
        --job-workers N >= 2 runs every job on N forked worker processes.)
  hvc submit <model.ta> --connect <addr> --tenant NAME [--priority P]
             [--wait] [--json] [--prop "<ltl>"]... [--name N]...
             [... same checking flags as hvc check ...]
       (submits a job to an hvc daemon and prints its id; --wait streams
        progress and exits with the job's own exit code, printing the same
        --json output hvc check would have. Without --prop the model's
        bundled default properties are submitted.)
  hvc status --connect <addr> [--job ID] [--json]
       (queue, per-job progress/ETA and cache statistics of a daemon)
  hvc result <job-id> --connect <addr> [--wait]
       (fetches a finished job's result — byte-identical to hvc check
        --json — and exits with the job's exit code; --wait blocks)
  hvc cancel <job-id> --connect <addr>
       (cancels a queued or running job; idempotent)
  hvc audit <cert.json> [--json] [--jobs N]
       (re-validates a certificate with exact arithmetic only; exit 0 iff
        every verdict is substantiated. --jobs N (alias --workers) shards
        the evidence lists across N concurrent audit lanes on the pipeline
        DAG scheduler; the merged report is byte-identical to --jobs 1.)
  hvc explicit <model.ta> --prop "<ltl>" --params n=4,t=1,f=1 [--max-states K]
                       [--json]
  hvc dot <model.ta>
  hvc print <model.ta>
  hvc redbelly [--naive] [--certify] [--cert-out cert.json]
               [--journal prefix] [--resume] [--dag-workers N]
       (--journal writes one crash-safe journal per stage: <prefix>.naive
        .jsonl, <prefix>.bv.jsonl, <prefix>.consensus.jsonl; --resume
        continues from whatever those files already settled.
        --dag-workers N schedules the pipeline as a property DAG on N
        concurrent lanes: a refuted bv property cancels the consensus
        stage before it starts, node progress and a whole-DAG ETA stream
        to stderr, and --journal switches to one journal per *node*
        (<prefix>.<stage>.<property>.jsonl) so --resume is per-node.
        Verdicts, accounting and certificates are identical to the
        sequential pipeline.)
  hvc simulate [--n N] [--t T] [--inputs 0,1,1,0] [--byzantine 3]
               [--scheduler fair|random|fifo] [--seed S] [--max-steps K]
  hvc simulate --lemma7 [--rounds R]

exit codes: 0 holds / fully verified / audit passed, 1 violated or audit
failed, 2 usage or input error, 3 inconclusive (budget or timeout
exhausted)
)";

// Set by SIGINT/SIGTERM; polled by the checker as its cancellation flag.
std::atomic<bool> g_interrupted{false};

void handle_interrupt(int) { g_interrupted.store(true); }

double parse_spot_check_rate(const std::string& command, const std::string& value) {
  const double rate = std::stod(value);
  if (rate < 0.0 || rate > 1.0) {
    throw InvalidArgument(command + ": --spot-check-rate must be in [0, 1], got " + value);
  }
  return rate;
}

/// One extra human-output line for the Byzantine-defense counters; printed
/// only when something actually happened, so trusted-fleet runs keep their
/// exact pre-existing output.
void print_byzantine_stats(const dist::DistStats& stats, std::ostream& out) {
  if (stats.spot_checks == 0 && stats.hostile_frames == 0 && stats.lease_timeouts == 0 &&
      stats.workers_quarantined == 0 && stats.workers_banned == 0 &&
      stats.leases_self_solved == 0) {
    return;
  }
  out << "byzantine: " << stats.spot_checks << " spot checks (" << stats.spot_check_failures
      << " disagreements), " << stats.hostile_frames << " hostile frames, "
      << stats.lease_timeouts << " lease timeouts, " << stats.workers_quarantined
      << " quarantined, " << stats.workers_banned << " banned, " << stats.leases_self_solved
      << " leases self-solved\n";
}

// Minimal JSON string escaping (the only JSON we emit is flat objects).
std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Simple flag cursor over the argument vector.
class Args {
 public:
  explicit Args(std::vector<std::string> args) : args_(std::move(args)) {}

  bool empty() const noexcept { return position_ >= args_.size(); }

  std::optional<std::string> next_positional() {
    if (empty()) return std::nullopt;
    return args_[position_++];
  }

  /// Consumes "--flag value"; returns nullopt if the next token is not
  /// this flag. Throws on a flag without its value.
  std::optional<std::string> option(const std::string& flag) {
    if (empty() || args_[position_] != flag) return std::nullopt;
    ++position_;
    if (empty()) throw InvalidArgument(flag + " requires a value");
    return args_[position_++];
  }

  bool boolean(const std::string& flag) {
    if (empty() || args_[position_] != flag) return false;
    ++position_;
    return true;
  }

  const std::string& peek() const { return args_[position_]; }

 private:
  std::vector<std::string> args_;
  std::size_t position_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw InvalidArgument("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw InvalidArgument("cannot write file: " + path);
  file << text;
  if (!file) throw InvalidArgument("failed writing file: " + path);
}

ta::MultiRoundTa load_model(const std::string& path) { return ta::parse_ta(read_file(path)); }

ta::ParamValuation parse_params(const ta::ThresholdAutomaton& ta, const std::string& text) {
  ta::ParamValuation params;
  for (const std::string_view assignment : split(text, ',')) {
    const auto parts = split(assignment, '=');
    if (parts.size() != 2) {
      throw InvalidArgument("bad --params entry '" + std::string(assignment) +
                            "' (expected name=value)");
    }
    const auto var = ta.find_variable(std::string(trim(parts[0])));
    if (!var || !ta.is_parameter(*var)) {
      throw InvalidArgument("unknown parameter '" + std::string(trim(parts[0])) + "'");
    }
    params[*var] = BigInt::from_string(trim(parts[1])).to_int64();
  }
  return params;
}

int exit_code(checker::Verdict verdict) {
  switch (verdict) {
    case checker::Verdict::kHolds:
      return 0;
    case checker::Verdict::kViolated:
      return 1;
    case checker::Verdict::kUnknown:
      return 3;
  }
  return 2;
}

/// Worst verdict across a run: violated dominates, then unknown.
int exit_code(const std::vector<checker::PropertyResult>& results) {
  int code = 0;
  for (const checker::PropertyResult& result : results) {
    if (result.verdict == checker::Verdict::kViolated) return 1;
    if (result.verdict == checker::Verdict::kUnknown) code = 3;
  }
  return code;
}

// Fraction of simplex Rational ops that stayed on the machine-word fast
// path (1.0 when no arithmetic ran, e.g. a fully-resumed journal run).
double rational_fast_ratio(const checker::PropertyResult& result) {
  const std::int64_t total = result.rational_fast_ops + result.rational_big_ops;
  if (total == 0) return 1.0;
  return static_cast<double>(result.rational_fast_ops) / static_cast<double>(total);
}

/// Pairs repeated --prop values with their --name values: the i-th --name
/// names the i-th --prop; unnamed properties default to "property",
/// "property2", "property3", ... (the first keeps the historical name, so
/// single-property invocations are unchanged).
std::vector<dist::PropertySpec> ltl_specs(const std::vector<std::string>& props,
                                          const std::vector<std::string>& names) {
  if (names.size() > props.size()) {
    throw InvalidArgument("more --name values than --prop values");
  }
  std::vector<dist::PropertySpec> specs;
  for (std::size_t i = 0; i < props.size(); ++i) {
    std::string name = i < names.size()
                           ? names[i]
                           : (i == 0 ? "property" : "property" + std::to_string(i + 1));
    specs.push_back({std::move(name), props[i], /*bundled=*/false});
  }
  return specs;
}

void print_result_text(const ta::ThresholdAutomaton& ta, const checker::PropertyResult& result,
                       std::ostream& out) {
  out << result.property << ": " << checker::to_string(result.verdict) << " ("
      << result.schemas_checked << " schemas, " << result.schemas_pruned << " pruned, "
      << result.simplex_pivots << " pivots, " << result.seconds << "s)\n";
  if (result.rational_fast_ops + result.rational_big_ops > 0) {
    out << "arithmetic: " << result.rational_fast_ops << " fast-path ops, "
        << result.rational_big_ops << " bigint ops ("
        << static_cast<int>(rational_fast_ratio(result) * 100.0) << "% fast)\n";
  }
  if (result.schemas_cut > 0 || result.lemma_hits > 0 || result.lemmas_learned > 0) {
    out << "learning: " << result.schemas_cut << " schemas cut, " << result.lemma_hits
        << " lemma hits, " << result.lemmas_learned << " lemmas learned\n";
  }
  if (result.schemas_unknown > 0 || result.schemas_resumed > 0 || result.retries > 0) {
    out << "robustness: " << result.schemas_unknown << " schemas unknown, "
        << result.schemas_resumed << " resumed from journal, " << result.retries
        << " fresh-solver retries\n";
  }
  if (result.incremental) {
    out << "incremental: " << result.incremental->segments_pushed << " segments pushed, "
        << result.incremental->segments_reused << " reused ("
        << static_cast<int>(result.incremental->prefix_reuse_ratio() * 100.0)
        << "% prefix reuse)\n";
  }
  if (!result.note.empty()) out << "note: " << result.note << "\n";
  if (result.counterexample) out << result.counterexample->to_string(ta);
}

int command_check(Args& args, std::ostream& out) {
  const auto model_path = args.next_positional();
  if (!model_path) throw InvalidArgument("check: missing model file");
  std::vector<std::string> props;
  std::vector<std::string> names;
  bool json = false;
  bool certify = false;
  int fork_workers = 0;
  double spot_check_rate = 0.0;
  std::uint64_t spot_check_seed = 0;
  std::optional<std::string> cert_out;
  checker::CheckOptions options;
  while (!args.empty()) {
    if (const auto value = args.option("--prop")) {
      props.push_back(*value);
    } else if (const auto value = args.option("--name")) {
      names.push_back(*value);
    } else if (const auto value = args.option("--timeout")) {
      options.timeout_seconds = std::stod(*value);
    } else if (const auto value = args.option("--max-schemas")) {
      options.enumeration.max_schemas = std::stoll(*value);
    } else if (const auto value = args.option("--workers")) {
      fork_workers = std::stoi(*value);
    } else if (const auto value = args.option("--threads")) {
      options.workers = std::stoi(*value);
    } else if (const auto value = args.option("--spot-check-rate")) {
      spot_check_rate = parse_spot_check_rate("check", *value);
    } else if (const auto value = args.option("--spot-check-seed")) {
      spot_check_seed = std::stoull(*value);
    } else if (args.boolean("--no-pruning")) {
      options.property_directed_pruning = false;
    } else if (args.boolean("--no-incremental")) {
      options.incremental = false;
    } else if (args.boolean("--no-lemmas")) {
      options.lemmas = false;
    } else if (args.boolean("--json")) {
      json = true;
    } else if (args.boolean("--certify")) {
      certify = true;
    } else if (const auto value = args.option("--cert-out")) {
      cert_out = *value;
    } else if (const auto value = args.option("--journal")) {
      options.journal_path = *value;
    } else if (const auto value = args.option("--resume")) {
      options.resume_path = *value;
    } else if (const auto value = args.option("--schema-timeout")) {
      options.schema_timeout_seconds = std::stod(*value);
    } else if (const auto value = args.option("--pivot-budget")) {
      options.pivot_budget = std::stoll(*value);
    } else if (const auto value = args.option("--memory-budget")) {
      options.memory_budget_mb = std::stoll(*value);
    } else if (args.boolean("--no-retry")) {
      options.retry_fresh = false;
    } else {
      throw InvalidArgument("check: unexpected argument '" + args.peek() + "'");
    }
  }
  options.certify = certify;
  if (!options.resume_path.empty() && options.journal_path.empty()) {
    // Resuming keeps extending the same journal, so a later resume sees the
    // whole run.
    options.journal_path = options.resume_path;
  } else if (!options.journal_path.empty() && options.journal_path != options.resume_path) {
    // A fresh journal starts empty; append semantics are for resume only.
    std::remove(options.journal_path.c_str());
  }
  options.cancel = &g_interrupted;
  options.fault = checker::fault_plan_from_env();
  if (spot_check_rate > 0.0 && fork_workers < 2) {
    throw InvalidArgument(
        "check: --spot-check-rate needs --workers N (N >= 2): in-process verdicts are "
        "trusted by construction");
  }

  const std::string model_text = read_file(*model_path);
  const ta::ThresholdAutomaton ta = ta::parse_ta(model_text).one_round_reduction();
  const std::vector<dist::PropertySpec> ltl = ltl_specs(props, names);
  std::vector<spec::Property> properties;
  if (!ltl.empty()) {
    for (const dist::PropertySpec& spec : ltl) {
      properties.push_back(spec::compile(ta, spec.name, spec.formula));
    }
  } else if (certify && cert::has_bundled_properties(ta.name())) {
    // Certify the model's bundled default set (the Table-2 properties for
    // the simplified consensus automaton).
    properties = cert::bundled_properties(ta, /*table2_defaults=*/true);
  } else {
    throw InvalidArgument(
        "check: --prop is required" +
        std::string(certify ? " (no bundled properties for automaton '" + ta.name() + "')"
                            : ""));
  }

  std::vector<checker::PropertyResult> results;
  dist::DistStats dist_stats;
  if (fork_workers >= 2) {
    // Fork-local distributed mode: N worker processes over a private unix
    // socket. The specs travel by name/formula; workers recompile them
    // against their own parse of the model text.
    std::vector<dist::PropertySpec> specs = ltl;
    if (specs.empty()) {
      for (const spec::Property& property : properties) {
        specs.push_back({property.name, "", /*bundled=*/true});
      }
    }
    dist::DistOptions dist_options;
    dist_options.check = options;
    dist_options.spot_check_rate = spot_check_rate;
    dist_options.spot_check_seed = spot_check_seed;
    results = dist::check_distributed_local(model_text, specs, fork_workers, dist_options,
                                            &dist_stats);
  } else {
    results = checker::check_properties(ta, properties, options);
  }

  std::string cert_path;
  if (certify) {
    cert::Certificate certificate;
    certificate.components.push_back(
        cert::make_component_cert(cert::text_model_source(model_text), properties, results,
                                  props.empty() ? "bundled" : "ltl"));
    cert_path = cert_out.value_or(*model_path + ".cert.json");
    write_file(cert_path, cert::to_json_text(certificate));
  }

  if (json) {
    out << service::render_results_json(ta, results);
  } else {
    for (const checker::PropertyResult& result : results) print_result_text(ta, result, out);
    if (fork_workers >= 2) {
      out << "distributed: " << dist_stats.workers_joined << " workers joined, "
          << dist_stats.workers_lost << " lost, " << dist_stats.leases_granted
          << " leases granted, " << dist_stats.leases_reassigned << " reassigned\n";
      print_byzantine_stats(dist_stats, out);
    }
    if (certify) out << "certificate: " << cert_path << "\n";
  }
  return exit_code(results);
}

int command_serve(Args& args, std::ostream& out) {
  const auto model_path = args.next_positional();
  if (!model_path) throw InvalidArgument("serve: missing model file");
  std::string listen;
  std::vector<std::string> props;
  std::vector<std::string> names;
  bool json = false;
  bool certify = false;
  std::optional<std::string> cert_out;
  dist::DistOptions dist_options;
  checker::CheckOptions& options = dist_options.check;
  while (!args.empty()) {
    if (const auto value = args.option("--listen")) {
      listen = *value;
    } else if (const auto value = args.option("--prop")) {
      props.push_back(*value);
    } else if (const auto value = args.option("--name")) {
      names.push_back(*value);
    } else if (const auto value = args.option("--timeout")) {
      options.timeout_seconds = std::stod(*value);
    } else if (const auto value = args.option("--max-schemas")) {
      options.enumeration.max_schemas = std::stoll(*value);
    } else if (const auto value = args.option("--expected-workers")) {
      dist_options.expected_workers = std::stoi(*value);
    } else if (const auto value = args.option("--lease-timeout")) {
      dist_options.lease_timeout_seconds = std::stod(*value);
    } else if (const auto value = args.option("--spot-check-rate")) {
      dist_options.spot_check_rate = parse_spot_check_rate("serve", *value);
    } else if (const auto value = args.option("--spot-check-seed")) {
      dist_options.spot_check_seed = std::stoull(*value);
    } else if (args.boolean("--no-pruning")) {
      options.property_directed_pruning = false;
    } else if (args.boolean("--no-incremental")) {
      options.incremental = false;
    } else if (args.boolean("--no-lemmas")) {
      options.lemmas = false;
    } else if (args.boolean("--json")) {
      json = true;
    } else if (args.boolean("--certify")) {
      certify = true;
    } else if (const auto value = args.option("--cert-out")) {
      cert_out = *value;
    } else if (const auto value = args.option("--journal")) {
      options.journal_path = *value;
    } else if (const auto value = args.option("--resume")) {
      options.resume_path = *value;
    } else if (const auto value = args.option("--schema-timeout")) {
      options.schema_timeout_seconds = std::stod(*value);
    } else if (const auto value = args.option("--pivot-budget")) {
      options.pivot_budget = std::stoll(*value);
    } else if (const auto value = args.option("--memory-budget")) {
      options.memory_budget_mb = std::stoll(*value);
    } else if (args.boolean("--no-retry")) {
      options.retry_fresh = false;
    } else {
      throw InvalidArgument("serve: unexpected argument '" + args.peek() + "'");
    }
  }
  if (listen.empty()) throw InvalidArgument("serve: --listen is required");
  options.certify = certify;
  if (!options.resume_path.empty() && options.journal_path.empty()) {
    options.journal_path = options.resume_path;
  } else if (!options.journal_path.empty() && options.journal_path != options.resume_path) {
    std::remove(options.journal_path.c_str());
  }
  options.cancel = &g_interrupted;

  const std::string model_text = read_file(*model_path);
  const ta::ThresholdAutomaton ta = ta::parse_ta(model_text).one_round_reduction();
  std::vector<dist::PropertySpec> specs = ltl_specs(props, names);
  if (!specs.empty()) {
    // LTL properties from the command line travel by formula.
  } else if (cert::has_bundled_properties(ta.name())) {
    for (const spec::Property& property :
         cert::bundled_properties(ta, /*table2_defaults=*/true)) {
      specs.push_back({property.name, "", /*bundled=*/true});
    }
  } else {
    throw InvalidArgument("serve: --prop is required (no bundled properties for automaton '" +
                          ta.name() + "')");
  }

  dist::DistStats stats;
  const std::vector<checker::PropertyResult> results =
      dist::serve(model_text, specs, listen, dist_options, &stats);

  std::string cert_path;
  if (certify) {
    const std::vector<spec::Property> properties = dist::resolve_properties(ta, specs);
    cert::Certificate certificate;
    certificate.components.push_back(
        cert::make_component_cert(cert::text_model_source(model_text), properties, results,
                                  props.empty() ? "bundled" : "ltl"));
    cert_path = cert_out.value_or(*model_path + ".cert.json");
    write_file(cert_path, cert::to_json_text(certificate));
  }

  if (json) {
    out << service::render_results_json(ta, results);
  } else {
    for (const checker::PropertyResult& result : results) print_result_text(ta, result, out);
    out << "distributed: " << stats.workers_joined << " workers joined, "
        << stats.workers_lost << " lost, " << stats.leases_granted << " leases granted, "
        << stats.leases_reassigned << " reassigned\n";
    print_byzantine_stats(stats, out);
    if (certify) out << "certificate: " << cert_path << "\n";
  }
  return exit_code(results);
}

int command_work(Args& args, std::ostream& out) {
  dist::WorkerOptions options;
  while (!args.empty()) {
    if (const auto value = args.option("--connect")) {
      options.connect = *value;
    } else if (const auto value = args.option("--label")) {
      options.label = *value;
    } else if (const auto value = args.option("--retry")) {
      options.connect_retry_seconds = std::stod(*value);
    } else if (const auto value = args.option("--reconnect")) {
      options.reconnect_seconds = std::stod(*value);
    } else if (const auto value = args.option("--heartbeat-ms")) {
      options.heartbeat_ms = std::stoi(*value);
      if (options.heartbeat_ms <= 0) {
        throw InvalidArgument("work: --heartbeat-ms must be a positive period, got " + *value);
      }
    } else {
      throw InvalidArgument("work: unexpected argument '" + args.peek() + "'");
    }
  }
  if (options.connect.empty()) throw InvalidArgument("work: --connect is required");
  options.fault = checker::fault_plan_from_env();
  options.cancel = &g_interrupted;
  // Adversarial test hook: forge sat verdicts so a spot-checking
  // coordinator can be exercised end-to-end from the shell.
  if (const char* lie = std::getenv("HV_LIE_VERDICTS"); lie != nullptr && *lie == '1') {
    options.lie_about_verdicts = true;
  }
  const dist::WorkerReport report = dist::run_worker(options);
  out << "worker '" << options.label << "': " << report.leases << " leases, "
      << report.records << " records"
      << (report.completed ? ", run complete" : "") << "\n";
  if (!report.note.empty()) out << "note: " << report.note << "\n";
  // 0 only for a clean shutdown from the coordinator; anything else (lost
  // connection, cancellation, injected abort) is inconclusive for this
  // worker — the coordinator's exit code is the run's verdict.
  return report.completed ? 0 : 3;
}

int command_daemon(Args& args, std::ostream& out) {
  std::string listen;
  service::DaemonOptions options;
  while (!args.empty()) {
    if (const auto value = args.option("--listen")) {
      listen = *value;
    } else if (const auto value = args.option("--state")) {
      options.state_dir = *value;
    } else if (const auto value = args.option("--cache-mb")) {
      options.cache_bytes = std::stoll(*value) * 1024 * 1024;
    } else if (const auto value = args.option("--job-workers")) {
      options.job_workers = std::stoi(*value);
    } else if (const auto value = args.option("--max-running")) {
      options.limits.max_running = std::stoi(*value);
    } else if (const auto value = args.option("--tenant-max-queued")) {
      options.limits.tenant_max_queued = std::stoi(*value);
    } else if (const auto value = args.option("--tenant-max-running")) {
      options.limits.tenant_max_running = std::stoi(*value);
    } else if (const auto value = args.option("--tenant-schema-budget")) {
      options.limits.tenant_schema_budget = std::stoll(*value);
    } else if (const auto value = args.option("--spot-check-rate")) {
      options.spot_check_rate = parse_spot_check_rate("daemon", *value);
    } else {
      throw InvalidArgument("daemon: unexpected argument '" + args.peek() + "'");
    }
  }
  if (listen.empty()) throw InvalidArgument("daemon: --listen is required");
  if (options.state_dir.empty()) throw InvalidArgument("daemon: --state is required");
  options.stop = &g_interrupted;
  return service::run_daemon(listen, options, out);
}

/// Shared by submit/status/result/cancel: prints a daemon progress frame
/// as a one-line human summary.
void print_progress(const cert::Json& frame, std::ostream& out) {
  out << "job " << frame.at("job").as_int() << " " << frame.at("state").as_string() << ": "
      << frame.at("solved").as_int() << " solved / " << frame.at("enumerated").as_int()
      << " enumerated, " << frame.at("properties_done").as_int() << "/"
      << frame.at("properties").as_int() << " properties";
  const double eta = frame.at("eta_seconds").as_double();
  if (eta >= 0.0) out << ", eta " << eta << "s";
  out << "\n";
}

int command_submit(Args& args, std::ostream& out) {
  const auto model_path = args.next_positional();
  if (!model_path) throw InvalidArgument("submit: missing model file");
  std::string connect;
  std::vector<std::string> props;
  std::vector<std::string> names;
  bool wait = false;
  bool json = false;
  service::SubmitRequest request;
  checker::CheckOptions& options = request.options;
  while (!args.empty()) {
    if (const auto value = args.option("--connect")) {
      connect = *value;
    } else if (const auto value = args.option("--tenant")) {
      request.tenant = *value;
    } else if (const auto value = args.option("--priority")) {
      request.priority = std::stoi(*value);
    } else if (args.boolean("--wait")) {
      wait = true;
    } else if (const auto value = args.option("--prop")) {
      props.push_back(*value);
    } else if (const auto value = args.option("--name")) {
      names.push_back(*value);
    } else if (const auto value = args.option("--timeout")) {
      options.timeout_seconds = std::stod(*value);
    } else if (const auto value = args.option("--max-schemas")) {
      options.enumeration.max_schemas = std::stoll(*value);
    } else if (const auto value = args.option("--threads")) {
      options.workers = std::stoi(*value);
    } else if (args.boolean("--no-pruning")) {
      options.property_directed_pruning = false;
    } else if (args.boolean("--no-incremental")) {
      options.incremental = false;
    } else if (args.boolean("--no-lemmas")) {
      options.lemmas = false;
    } else if (args.boolean("--json")) {
      json = true;
    } else if (args.boolean("--certify")) {
      options.certify = true;
    } else if (const auto value = args.option("--schema-timeout")) {
      options.schema_timeout_seconds = std::stod(*value);
    } else if (const auto value = args.option("--pivot-budget")) {
      options.pivot_budget = std::stoll(*value);
    } else if (const auto value = args.option("--memory-budget")) {
      options.memory_budget_mb = std::stoll(*value);
    } else if (args.boolean("--no-retry")) {
      options.retry_fresh = false;
    } else {
      throw InvalidArgument("submit: unexpected argument '" + args.peek() + "'");
    }
  }
  if (connect.empty()) throw InvalidArgument("submit: --connect is required");
  if (request.tenant.empty()) throw InvalidArgument("submit: --tenant is required");

  request.model_text = read_file(*model_path);
  request.specs = ltl_specs(props, names);
  if (request.specs.empty()) {
    const ta::ThresholdAutomaton ta = ta::parse_ta(request.model_text).one_round_reduction();
    if (!cert::has_bundled_properties(ta.name())) {
      throw InvalidArgument("submit: --prop is required (no bundled properties for automaton '" +
                            ta.name() + "')");
    }
    for (const spec::Property& property :
         cert::bundled_properties(ta, /*table2_defaults=*/true)) {
      request.specs.push_back({property.name, "", /*bundled=*/true});
    }
  }

  service::Client client(connect);
  const cert::Json submitted = client.submit(request);
  const std::int64_t job = submitted.at("job").as_int();
  const bool cached = submitted.at("cached").as_bool();
  if (!wait) {
    if (json) {
      out << submitted.to_string() << "\n";
    } else {
      out << "job " << job << " " << submitted.at("state").as_string()
          << (cached ? " (cache hit)" : "") << "\n";
    }
    return 0;
  }
  const cert::Json final_frame =
      client.result(job, /*wait=*/true, [&](const cert::Json& frame) {
        if (!json) print_progress(frame, out);
      });
  const cert::Json* type = final_frame.find("type");
  if (type == nullptr || type->as_string() != "result") {
    throw Error("submit: " + final_frame.at("message").as_string());
  }
  const std::string& state = final_frame.at("state").as_string();
  if (state == "done") {
    // The daemon's response is the byte-identical `hvc check --json`
    // output; in human mode it still tells the whole story compactly.
    out << final_frame.at("response").as_string();
    if (!json && cached) out << "(served from result cache)\n";
    return static_cast<int>(final_frame.at("code").as_int());
  }
  out << "job " << job << " " << state << ": " << final_frame.at("response").as_string()
      << "\n";
  return static_cast<int>(final_frame.at("code").as_int());
}

int command_status(Args& args, std::ostream& out) {
  std::string connect;
  std::int64_t job = -1;
  bool json = false;
  while (!args.empty()) {
    if (const auto value = args.option("--connect")) {
      connect = *value;
    } else if (const auto value = args.option("--job")) {
      job = std::stoll(*value);
    } else if (args.boolean("--json")) {
      json = true;
    } else {
      throw InvalidArgument("status: unexpected argument '" + args.peek() + "'");
    }
  }
  if (connect.empty()) throw InvalidArgument("status: --connect is required");
  service::Client client(connect);
  const cert::Json status = client.status(job);
  const cert::Json* type = status.find("type");
  if (type == nullptr || type->as_string() != "status") {
    throw Error("status: " + status.at("message").as_string());
  }
  if (json) {
    out << status.to_string() << "\n";
    return 0;
  }
  const cert::Json& cache = status.at("cache");
  out << "daemon: " << status.at("running").as_int() << " running, "
      << status.at("queued").as_int() << " queued; cache " << cache.at("entries").as_int()
      << " entries / " << cache.at("bytes").as_int() << " bytes ("
      << cache.at("hits").as_int() << " hits, " << cache.at("misses").as_int()
      << " misses, " << cache.at("evictions").as_int() << " evictions)\n";
  for (const cert::Json& row : status.at("jobs").as_array()) {
    out << "  job " << row.at("job").as_int() << " [" << row.at("tenant").as_string()
        << "] " << row.at("state").as_string();
    if (row.at("cached").as_bool()) out << " (cache hit)";
    if (const cert::Json* code = row.find("code")) out << " exit " << code->as_int();
    if (row.at("state").as_string() == "running") {
      out << ": " << row.at("solved").as_int() << " solved / "
          << row.at("enumerated").as_int() << " enumerated, "
          << row.at("properties_done").as_int() << "/" << row.at("properties").as_int()
          << " properties, " << row.at("workers").as_int() << " workers";
      const double eta = row.at("eta_seconds").as_double();
      if (eta >= 0.0) out << ", eta " << eta << "s";
    }
    out << "\n";
  }
  return 0;
}

int command_result(Args& args, std::ostream& out) {
  const auto job_text = args.next_positional();
  if (!job_text) throw InvalidArgument("result: missing job id");
  std::string connect;
  bool wait = false;
  while (!args.empty()) {
    if (const auto value = args.option("--connect")) {
      connect = *value;
    } else if (args.boolean("--wait")) {
      wait = true;
    } else {
      throw InvalidArgument("result: unexpected argument '" + args.peek() + "'");
    }
  }
  if (connect.empty()) throw InvalidArgument("result: --connect is required");
  service::Client client(connect);
  const cert::Json frame = client.result(std::stoll(*job_text), wait);
  const cert::Json* type = frame.find("type");
  if (type == nullptr) throw Error("result: malformed reply");
  if (type->as_string() == "error") throw Error("result: " + frame.at("message").as_string());
  if (type->as_string() == "progress") {
    print_progress(frame, out);
    return 3;  // still running: inconclusive, like a budget-exhausted check
  }
  const std::string& state = frame.at("state").as_string();
  if (state == "done") {
    out << frame.at("response").as_string();
  } else {
    out << "job " << frame.at("job").as_int() << " " << state << ": "
        << frame.at("response").as_string() << "\n";
  }
  return static_cast<int>(frame.at("code").as_int());
}

int command_cancel(Args& args, std::ostream& out) {
  const auto job_text = args.next_positional();
  if (!job_text) throw InvalidArgument("cancel: missing job id");
  std::string connect;
  while (!args.empty()) {
    if (const auto value = args.option("--connect")) {
      connect = *value;
    } else {
      throw InvalidArgument("cancel: unexpected argument '" + args.peek() + "'");
    }
  }
  if (connect.empty()) throw InvalidArgument("cancel: --connect is required");
  service::Client client(connect);
  const cert::Json reply = client.cancel(std::stoll(*job_text));
  const cert::Json* type = reply.find("type");
  if (type == nullptr || type->as_string() != "ok") {
    throw Error("cancel: " + reply.at("message").as_string());
  }
  out << "job " << reply.at("job").as_int() << " " << reply.at("state").as_string() << "\n";
  return 0;
}

int command_audit(Args& args, std::ostream& out) {
  const auto cert_path = args.next_positional();
  if (!cert_path) throw InvalidArgument("audit: missing certificate file");
  bool json = false;
  cert::AuditOptions audit_options;
  while (!args.empty()) {
    if (args.boolean("--json")) {
      json = true;
    } else if (const auto value = args.option("--jobs")) {
      audit_options.jobs = std::stoi(*value);
    } else if (const auto value = args.option("--workers")) {
      audit_options.jobs = std::stoi(*value);  // alias, mirrors hvc check
    } else {
      throw InvalidArgument("audit: unexpected argument '" + args.peek() + "'");
    }
  }
  if (audit_options.jobs < 1) {
    throw InvalidArgument("audit: --jobs must be >= 1");
  }
  const cert::Certificate certificate = cert::parse_certificate(read_file(*cert_path));
  const cert::AuditReport report = cert::audit_certificate(certificate, audit_options);
  if (json) {
    cert::Json::Array issues;
    for (const std::string& issue : report.issues) issues.push_back(issue);
    cert::Json::Array warnings;
    for (const std::string& warning : report.warnings) warnings.push_back(warning);
    const cert::Json summary = cert::Json::Object{
        {"ok", report.ok},
        {"properties_audited", report.properties_audited},
        {"schemas_covered", report.schemas_covered},
        {"schemas_pruned", report.schemas_pruned},
        {"models_checked", report.models_checked},
        {"farkas_nodes", report.farkas_nodes},
        {"issues", std::move(issues)},
        {"warnings", std::move(warnings)},
    };
    out << summary.to_pretty_string() << "\n";
  } else {
    out << report.to_string();
  }
  return report.ok ? 0 : 1;
}

int command_explicit(Args& args, std::ostream& out) {
  const auto model_path = args.next_positional();
  if (!model_path) throw InvalidArgument("explicit: missing model file");
  std::string prop;
  std::string params_text;
  bool json = false;
  checker::ExplicitOptions options;
  while (!args.empty()) {
    if (const auto value = args.option("--prop")) {
      prop = *value;
    } else if (const auto value = args.option("--params")) {
      params_text = *value;
    } else if (const auto value = args.option("--max-states")) {
      options.max_states = std::stoll(*value);
    } else if (args.boolean("--json")) {
      json = true;
    } else {
      throw InvalidArgument("explicit: unexpected argument '" + args.peek() + "'");
    }
  }
  if (prop.empty() || params_text.empty()) {
    throw InvalidArgument("explicit: --prop and --params are required");
  }
  const ta::MultiRoundTa model = load_model(*model_path);
  const ta::ThresholdAutomaton ta = model.one_round_reduction();
  const spec::Property property = spec::compile(ta, "property", prop);
  const checker::ExplicitResult result =
      checker::check_explicit(ta, property, parse_params(ta, params_text), options);
  if (json) {
    out << "{\"verdict\": \"" << checker::to_string(result.verdict)
        << "\", \"states\": " << result.states_explored << ", \"seconds\": "
        << result.seconds << ", \"note\": \"" << json_escape(result.note) << "\"}\n";
    return exit_code(result.verdict);
  }
  out << "explicit: " << checker::to_string(result.verdict) << " ("
      << result.states_explored << " states, " << result.seconds << "s)";
  if (!result.note.empty()) out << " [" << result.note << "]";
  out << "\n";
  return exit_code(result.verdict);
}

int command_dot(Args& args, std::ostream& out) {
  const auto model_path = args.next_positional();
  if (!model_path) throw InvalidArgument("dot: missing model file");
  out << ta::to_dot(load_model(*model_path));
  return 0;
}

int command_print(Args& args, std::ostream& out) {
  const auto model_path = args.next_positional();
  if (!model_path) throw InvalidArgument("print: missing model file");
  out << ta::to_text(load_model(*model_path));
  return 0;
}

int command_simulate(Args& args, std::ostream& out) {
  sim::RunnerConfig config;
  config.n = 4;
  config.t = 1;
  std::string scheduler_name = "fair";
  std::string inputs_text;
  std::string byzantine_text;
  bool lemma7 = false;
  int lemma7_rounds = 10;
  std::int64_t max_steps = 1'000'000;
  while (!args.empty()) {
    if (const auto value = args.option("--n")) {
      config.n = std::stoi(*value);
    } else if (const auto value = args.option("--t")) {
      config.t = std::stoi(*value);
    } else if (const auto value = args.option("--inputs")) {
      inputs_text = *value;
    } else if (const auto value = args.option("--byzantine")) {
      byzantine_text = *value;
    } else if (const auto value = args.option("--scheduler")) {
      scheduler_name = *value;
    } else if (const auto value = args.option("--seed")) {
      config.seed = std::stoull(*value);
    } else if (const auto value = args.option("--max-steps")) {
      max_steps = std::stoll(*value);
    } else if (args.boolean("--lemma7")) {
      lemma7 = true;
    } else if (const auto value = args.option("--rounds")) {
      lemma7_rounds = std::stoi(*value);
    } else {
      throw InvalidArgument("simulate: unexpected argument '" + args.peek() + "'");
    }
  }

  if (lemma7) {
    sim::Lemma7Script script;
    const std::string diagnostic = script.play_rounds(lemma7_rounds);
    if (!diagnostic.empty()) {
      out << "lemma 7 replay diverged: " << diagnostic << "\n";
      return 1;
    }
    out << "lemma 7 oscillation sustained for " << lemma7_rounds
        << " rounds; no process decided\n";
    for (const sim::ProcessId id : script.runner().correct_ids()) {
      const auto& process = script.runner().process(id);
      out << "  p" << id << ": round=" << process.current_round()
          << " est=" << process.estimate() << "\n";
    }
    return 0;
  }

  config.inputs.assign(static_cast<std::size_t>(config.n), 0);
  if (inputs_text.empty()) {
    for (int i = 0; i < config.n; i += 2) config.inputs[static_cast<std::size_t>(i)] = 1;
  } else {
    const auto fields = split(inputs_text, ',');
    if (static_cast<int>(fields.size()) != config.n) {
      throw InvalidArgument("simulate: --inputs must list exactly n values");
    }
    for (int i = 0; i < config.n; ++i) {
      config.inputs[static_cast<std::size_t>(i)] =
          static_cast<int>(BigInt::from_string(trim(fields[static_cast<std::size_t>(i)]))
                               .to_int64());
    }
  }
  std::unique_ptr<sim::Adversary> adversary;
  if (!byzantine_text.empty()) {
    for (const std::string_view field : split(byzantine_text, ',')) {
      config.byzantine.push_back(
          static_cast<int>(BigInt::from_string(trim(field)).to_int64()));
    }
    adversary = std::make_unique<sim::EquivocatingAdversary>();
  }
  std::unique_ptr<sim::Scheduler> scheduler;
  if (scheduler_name == "fair") {
    scheduler = std::make_unique<sim::GoodRoundScheduler>();
  } else if (scheduler_name == "random") {
    scheduler = std::make_unique<sim::RandomScheduler>();
  } else if (scheduler_name == "fifo") {
    scheduler = std::make_unique<sim::FifoScheduler>();
  } else {
    throw InvalidArgument("simulate: unknown scheduler '" + scheduler_name + "'");
  }

  sim::Runner runner(std::move(config), std::move(adversary));
  runner.start();
  const std::int64_t steps = runner.run(*scheduler, max_steps);
  out << "deliveries: " << steps << "\n";
  for (const sim::ProcessId id : runner.correct_ids()) {
    const auto& process = runner.process(id);
    out << "  p" << id << ": round=" << process.current_round()
        << " est=" << process.estimate() << " decision=";
    if (process.decision()) {
      out << *process.decision();
    } else {
      out << "-";
    }
    out << "\n";
  }
  const std::string agreement = runner.agreement_violation();
  const std::string validity = runner.validity_violation();
  out << "agreement: " << (agreement.empty() ? "ok" : agreement) << "\n";
  out << "validity: " << (validity.empty() ? "ok" : validity) << "\n";
  if (!agreement.empty() || !validity.empty()) return 1;
  return runner.all_correct_decided() ? 0 : 3;
}

int command_redbelly(Args& args, std::ostream& out, std::ostream& err) {
  pipeline::HolisticOptions options;
  bool certify = false;
  std::optional<std::string> cert_out;
  while (!args.empty()) {
    if (args.boolean("--naive")) {
      options.include_naive_attempt = true;
    } else if (args.boolean("--certify")) {
      certify = true;
    } else if (const auto value = args.option("--cert-out")) {
      cert_out = *value;
    } else if (const auto value = args.option("--journal")) {
      options.journal_prefix = *value;
    } else if (args.boolean("--resume")) {
      options.resume = true;
    } else if (const auto value = args.option("--dag-workers")) {
      options.dag_workers = std::stoi(*value);
      if (options.dag_workers < 1) {
        throw InvalidArgument("redbelly: --dag-workers must be >= 1");
      }
    } else {
      throw InvalidArgument("redbelly: unexpected argument '" + args.peek() + "'");
    }
  }
  if (options.resume && options.journal_prefix.empty()) {
    throw InvalidArgument("redbelly: --resume requires --journal <prefix>");
  }
  options.check.certify = certify;
  options.check.cancel = &g_interrupted;
  options.check.fault = checker::fault_plan_from_env();
  if (options.dag_workers >= 1) {
    // Node progress goes to stderr so stdout stays the stable report that
    // scripts diff against the sequential pipeline.
    options.on_progress = [&err](const std::string& line) { err << line << "\n"; };
  }
  const pipeline::HolisticReport report = pipeline::verify_red_belly_consensus(options);
  out << report.to_string();
  if (certify) {
    const std::string path = cert_out.value_or("redbelly.cert.json");
    write_file(path, cert::to_json_text(pipeline::certify_report(report)));
    out << "certificate: " << path << "\n";
  }
  return report.fully_verified() ? 0 : 3;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  // A leftover flag from an earlier command in the same process (tests) must
  // not cancel this one.
  g_interrupted.store(false);
  Args cursor(args);
  const auto command = cursor.next_positional();
  if (!command || *command == "--help" || *command == "help") {
    out << kUsage;
    return command ? 0 : 2;
  }
  try {
    if (*command == "check") return command_check(cursor, out);
    if (*command == "serve") return command_serve(cursor, out);
    if (*command == "work") return command_work(cursor, out);
    if (*command == "daemon") return command_daemon(cursor, out);
    if (*command == "submit") return command_submit(cursor, out);
    if (*command == "status") return command_status(cursor, out);
    if (*command == "result") return command_result(cursor, out);
    if (*command == "cancel") return command_cancel(cursor, out);
    if (*command == "audit") return command_audit(cursor, out);
    if (*command == "explicit") return command_explicit(cursor, out);
    if (*command == "dot") return command_dot(cursor, out);
    if (*command == "print") return command_print(cursor, out);
    if (*command == "redbelly") return command_redbelly(cursor, out, err);
    if (*command == "simulate") return command_simulate(cursor, out);
    err << "unknown command '" << *command << "'\n" << kUsage;
    return 2;
  } catch (const Error& error) {
    err << "error: " << error.what() << "\n";
    return 2;
  }
}

void install_interrupt_handlers() {
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
}

}  // namespace hv::tools
