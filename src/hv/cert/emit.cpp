#include "hv/cert/emit.h"

#include <utility>

#include "hv/util/error.h"

namespace hv::cert {

ModelSource text_model_source(std::string ta_text) {
  ModelSource source;
  source.kind = "text";
  source.text = std::move(ta_text);
  return source;
}

ModelSource builtin_model_source(std::string key) {
  ModelSource source;
  source.kind = "builtin";
  source.key = std::move(key);
  return source;
}

PropertyCert make_property_cert(const spec::Property& property,
                                const checker::PropertyResult& result, PropertySource source) {
  if (result.property != property.name) {
    throw InvalidArgument("certificate: result/property mismatch: '" + result.property +
                          "' vs '" + property.name + "'");
  }
  if (result.evidence == nullptr) {
    throw InvalidArgument("certificate: result for '" + property.name +
                          "' carries no evidence (run with CheckOptions::certify)");
  }
  PropertyCert cert;
  cert.name = property.name;
  cert.source = std::move(source);
  if (cert.source.kind == "ltl") cert.source.formula = property.formula_text;
  cert.verdict = checker::to_string(result.verdict);
  cert.note = result.note;
  cert.enumeration = result.evidence->enumeration;
  cert.property_directed_pruning = result.evidence->property_directed_pruning;
  cert.complete = result.evidence->complete;
  cert.schemas.reserve(result.evidence->schemas.size());
  for (const checker::SchemaEvidence& evidence : result.evidence->schemas) {
    SchemaCert entry;
    entry.query_index = static_cast<std::int64_t>(evidence.query_index);
    entry.schema = evidence.schema;
    entry.sat = evidence.sat;
    if (evidence.sat) {
      if (evidence.model == nullptr) {
        throw InvalidArgument("certificate: sat evidence without a model");
      }
      entry.model = *evidence.model;
    } else {
      if (evidence.proof == nullptr) {
        throw InvalidArgument("certificate: unsat evidence without a proof");
      }
      entry.proof = evidence.proof;
    }
    cert.schemas.push_back(std::move(entry));
  }
  cert.pruned.reserve(result.evidence->pruned.size());
  for (const checker::PrunedSchema& pruned : result.evidence->pruned) {
    cert.pruned.push_back({static_cast<std::int64_t>(pruned.query_index), pruned.schema});
  }
  return cert;
}

ComponentCert make_component_cert(ModelSource model, const std::vector<spec::Property>& properties,
                                  const std::vector<checker::PropertyResult>& results,
                                  const std::string& source_kind) {
  if (properties.size() != results.size()) {
    throw InvalidArgument("certificate: property/result count mismatch");
  }
  ComponentCert component;
  component.model = std::move(model);
  component.properties.reserve(properties.size());
  for (std::size_t i = 0; i < properties.size(); ++i) {
    PropertySource source;
    source.kind = source_kind;
    source.formula = properties[i].formula_text;
    component.properties.push_back(make_property_cert(properties[i], results[i], std::move(source)));
  }
  return component;
}

}  // namespace hv::cert
