// The independent auditor: re-validates a certificate without running any
// solver.
//
// Trust boundary. The audited core is pure bigint/rational arithmetic
// (hv/util): every Farkas combination is re-derived premise by premise and
// checked to cancel to a contradictory constant, every case split is
// checked exhaustive, and every sat model is evaluated against the
// re-encoded constraints. The auditor does re-run the *deterministic,
// solver-free* front end to know what the premises are — the .ta parser,
// the LTL compiler, schema enumeration and the trace-mode encoder (which
// records assertions but never solves) — plus the guard analysis backing
// enumeration. Those components are shared with the checker and are trusted
// analysis; the simplex core, the DPLL search and branch-and-bound — where
// verification effort is actually spent and where a soundness bug would
// hide — are entirely out of the audit path.
//
// What a green audit establishes, per property:
//   * verdict "holds": every schema the enumerator produces for every
//     violation query is either covered by a checked Farkas/DPLL refutation
//     or excluded by the (re-computed) query cone, the enumeration ran to
//     completion within its budget, and every refutation is arithmetically
//     valid — so no execution in schema form violates the property.
//   * verdict "violated": at least one recorded model satisfies its
//     re-encoded violation query exactly.
//   * verdict "unknown": nothing (reported as a warning, not a failure).
// A theorem6 section is re-composed from the audited per-property verdicts
// using the paper's composition table (Proposition 2 + Theorem 6).
#ifndef HV_CERT_AUDIT_H
#define HV_CERT_AUDIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "hv/cert/certificate.h"

namespace hv::cert {

struct AuditReport {
  /// True iff no issue was found (warnings do not fail an audit).
  bool ok = false;
  /// Hard failures: each names the component/property/schema it concerns.
  std::vector<std::string> issues;
  /// Non-failing observations (e.g. unknown verdicts certify nothing).
  std::vector<std::string> warnings;

  std::int64_t properties_audited = 0;
  std::int64_t schemas_covered = 0;   // proof-carrying unsat schemas checked
  std::int64_t schemas_pruned = 0;    // cone decisions reproduced
  std::int64_t models_checked = 0;    // sat models evaluated
  std::int64_t farkas_nodes = 0;      // Farkas leaves arithmetically verified

  std::string to_string() const;
};

struct AuditOptions {
  /// Concurrent audit lanes. 1 is the classic single-process walk. N >= 2
  /// schedules the audit as a DAG (hv/pipeline/dag): per-component model
  /// reconstruction gates per-property shape validation, which gates N
  /// contiguous shards of that property's (query-grouped, prefix-sorted)
  /// evidence list — each shard re-encodes with its own trace encoder —
  /// which gate the property's coverage re-enumeration. Shard reports are
  /// merged back in canonical (component, property, shard) order, so the
  /// merged report is byte-equivalent to the single-process one: same
  /// issues in the same order (including the suppression cap), same
  /// warnings, same counters, same ok. The trust boundary is unchanged —
  /// every leaf is still checked by the same pure-arithmetic core, only
  /// scheduled differently.
  int jobs = 1;
};

/// Audits a certificate end to end. Never throws on malformed content —
/// every defect becomes an issue in the report.
AuditReport audit_certificate(const Certificate& certificate);
AuditReport audit_certificate(const Certificate& certificate, const AuditOptions& options);

}  // namespace hv::cert

#endif  // HV_CERT_AUDIT_H
