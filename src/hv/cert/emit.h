// Assembles certificates from certified checker results
// (checker::CheckOptions::certify runs).
#ifndef HV_CERT_EMIT_H
#define HV_CERT_EMIT_H

#include <string>
#include <vector>

#include "hv/cert/certificate.h"
#include "hv/checker/result.h"
#include "hv/spec/query.h"

namespace hv::cert {

/// A model source embedding the complete .ta text.
ModelSource text_model_source(std::string ta_text);
/// A model source naming a bundled model (see builtin_model()).
ModelSource builtin_model_source(std::string key);

/// Certificate section for one property. The result must carry evidence
/// (i.e. stem from a certify run); throws InvalidArgument otherwise. The
/// property is only used for its name/formula — it must be the one the
/// result was checked against.
PropertyCert make_property_cert(const spec::Property& property,
                                const checker::PropertyResult& result, PropertySource source);

/// Certificate section for one automaton: pairs properties and results by
/// position (they must correspond, as returned by check_properties). All
/// properties share the given source kind; for "ltl" each property's
/// formula_text is recorded as its formula.
ComponentCert make_component_cert(ModelSource model, const std::vector<spec::Property>& properties,
                                  const std::vector<checker::PropertyResult>& results,
                                  const std::string& source_kind);

}  // namespace hv::cert

#endif  // HV_CERT_EMIT_H
