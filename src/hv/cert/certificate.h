// Proof-carrying certificates: the on-disk format of `hvc check --certify`
// and `hvc redbelly --certify`, consumed by the solver-free auditor
// (hv/cert/audit.h).
//
// A certificate is self-contained: it embeds (or names) the model, lists
// the properties with their verdicts, and for every (query, schema) pair of
// a certified run carries either a Farkas/DPLL proof tree (unsat) or a full
// named integer model (sat), plus the enumeration manifest needed to
// re-derive that the covered schema set is complete for the chain tree.
// The optional theorem6 section records the composed consensus verdicts of
// the holistic pipeline (Agreement/Validity/Termination); the auditor
// recomputes them from the audited per-property verdicts using the paper's
// composition table.
#ifndef HV_CERT_CERTIFICATE_H
#define HV_CERT_CERTIFICATE_H

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hv/cert/json.h"
#include "hv/checker/result.h"
#include "hv/checker/schema.h"
#include "hv/smt/proof.h"
#include "hv/spec/query.h"
#include "hv/ta/automaton.h"

namespace hv::cert {

/// How the auditor reconstructs the threshold automaton.
struct ModelSource {
  /// "text": `text` holds the complete .ta source (parse + one-round
  /// reduction reproduce the checked automaton). "builtin": `key` names one
  /// of the models bundled with the library (see builtin_model()).
  std::string kind;
  std::string text;
  std::string key;
};

/// How the auditor reconstructs one property's violation queries.
struct PropertySource {
  /// "ltl": compile `formula` against the reconstructed automaton.
  /// "bundled": look the property up by name in the automaton's bundled
  /// property set (needed when compilation uses justice overrides that have
  /// no LTL syntax, e.g. the bv-broadcast gadget substitution).
  std::string kind;
  std::string formula;  // informational for "bundled"
};

/// Evidence for one (query, schema) SMT verdict.
struct SchemaCert {
  std::int64_t query_index = 0;
  checker::Schema schema;
  bool sat = false;
  std::shared_ptr<const smt::proof::Node> proof;             // iff !sat
  std::vector<std::pair<std::string, BigInt>> model;         // iff sat
};

/// A schema the certifying run discarded via the (deterministic) query cone
/// without an SMT call; the auditor reproduces the decision.
struct PrunedCert {
  std::int64_t query_index = 0;
  checker::Schema schema;
};

struct PropertyCert {
  std::string name;
  PropertySource source;
  std::string verdict;  // "holds" | "violated" | "unknown"
  std::string note;
  checker::EnumerationOptions enumeration;
  bool property_directed_pruning = true;
  /// Claimed exhaustive coverage of the schema space (holds verdicts only).
  bool complete = false;
  std::vector<SchemaCert> schemas;
  std::vector<PrunedCert> pruned;
};

/// One automaton with its certified properties.
struct ComponentCert {
  ModelSource model;
  std::vector<PropertyCert> properties;
};

/// The composed Theorem-6 verdicts claimed by the holistic pipeline.
struct Theorem6Claim {
  std::string agreement;
  std::string validity;
  std::string termination;
};

struct Certificate {
  int version = 1;
  std::vector<ComponentCert> components;
  std::optional<Theorem6Claim> theorem6;
};

/// JSON (de)serialization. from_json/parse throw hv::InvalidArgument on any
/// malformed input — a corrupted certificate fails cleanly.
Json to_json(const Certificate& certificate);
Certificate certificate_from_json(const Json& json);
std::string to_json_text(const Certificate& certificate);
Certificate parse_certificate(std::string_view json_text);

/// Proof-tree (de)serialization, exposed for tests.
Json proof_to_json(const smt::proof::Node& node);
std::unique_ptr<smt::proof::Node> proof_from_json(const Json& json);

/// The models bundled with the library, by certificate key:
/// "bv_broadcast", "st_broadcast", "simplified_consensus" (one-round
/// reduction), "naive_consensus" (one-round reduction). Throws
/// InvalidArgument on an unknown key.
ta::ThresholdAutomaton builtin_model(const std::string& key);

/// True iff bundled_properties() knows the automaton (by its name, e.g.
/// "SimplifiedConsensus" — the .ta files and the builtin factories agree).
bool has_bundled_properties(const std::string& automaton_name);

/// The bundled property set for an automaton, compiled against `ta`. With
/// `table2_defaults`, restricts to the default `hvc check` set (the Table-2
/// rows for the consensus automata; every property otherwise). Throws
/// InvalidArgument when the automaton has no bundled set.
std::vector<spec::Property> bundled_properties(const ta::ThresholdAutomaton& ta,
                                               bool table2_defaults = false);

}  // namespace hv::cert

#endif  // HV_CERT_CERTIFICATE_H
