// Minimal JSON value type, parser and serializer for certificate files.
//
// Deliberately self-contained: the auditor's trusted computing base is
// hv/util arithmetic plus this file, so no external JSON library is pulled
// in. The subset is exactly what certificates need — objects, arrays,
// strings, booleans, null, 64-bit integers and doubles. All big numbers
// (BigInt, Rational) are transported as strings, never as JSON numbers, so
// nothing is ever rounded.
#ifndef HV_CERT_JSON_H
#define HV_CERT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hv::cert {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Insertion-ordered key/value pairs: serialization is deterministic and
  /// mirrors emission order. Lookups are linear (objects are small).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}                    // NOLINT
  Json(std::int64_t value) : kind_(Kind::kInt), int_(value) {}              // NOLINT
  Json(int value) : kind_(Kind::kInt), int_(value) {}                       // NOLINT
  Json(double value) : kind_(Kind::kDouble), double_(value) {}              // NOLINT
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}  // NOLINT
  Json(const char* value) : kind_(Kind::kString), string_(value) {}         // NOLINT
  Json(Array value) : kind_(Kind::kArray), array_(std::move(value)) {}      // NOLINT
  Json(Object value) : kind_(Kind::kObject), object_(std::move(value)) {}   // NOLINT

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }

  /// Typed accessors; throw hv::InvalidArgument on a kind mismatch (a
  /// malformed certificate must fail cleanly, never crash).
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;  // accepts kInt too
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object field access. find() returns nullptr when `this` is not an
  /// object or the key is absent; at() throws naming the missing key.
  const Json* find(std::string_view key) const noexcept;
  const Json& at(std::string_view key) const;
  /// Appends a field (no duplicate-key check; emission never duplicates).
  void set(std::string key, Json value);

  /// Compact single-line rendering.
  std::string to_string() const;
  /// Two-space-indented rendering (what certificate files use).
  std::string to_pretty_string() const;

  /// Strict parser; throws hv::InvalidArgument with a byte offset on any
  /// syntax error, trailing garbage, or nesting deeper than an internal
  /// limit (guarding the recursive parser's stack against hostile input).
  static Json parse(std::string_view text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace hv::cert

#endif  // HV_CERT_JSON_H
