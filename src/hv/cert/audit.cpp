#include "hv/cert/audit.h"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "hv/checker/cone.h"
#include "hv/checker/encoder.h"
#include "hv/checker/guard_analysis.h"
#include "hv/checker/schema.h"
#include "hv/pipeline/dag/scheduler.h"
#include "hv/spec/compile.h"
#include "hv/ta/parser.h"
#include "hv/util/error.h"

namespace hv::cert {

namespace {

using checker::EncoderMode;
using checker::GuardAnalysis;
using checker::IncrementalSchemaEncoder;
using checker::QueryCone;
using checker::Schema;
using smt::Relation;
using smt::proof::NamedTerms;
using smt::proof::Node;
using smt::proof::NodeKind;
using smt::proof::Premise;
using smt::proof::PremiseOrigin;
using smt::proof::Trace;
using smt::proof::TracedConstraint;
using smt::proof::TracedLiteral;

constexpr std::size_t kMaxIssues = 200;
constexpr int kMaxWalkDepth = 6000;

void add_issue(AuditReport& report, const std::string& context, const std::string& message) {
  if (report.issues.size() > kMaxIssues) return;
  if (report.issues.size() == kMaxIssues) {
    report.issues.push_back("... further issues suppressed");
    return;
  }
  report.issues.push_back(context + ": " + message);
}

/// Merge-time twin of add_issue: the issue string already carries its
/// context (it came out of a shard's own report), but the suppression cap
/// must behave as if the issue had been added to the merged report
/// directly — that is what keeps a merged shard audit byte-equivalent to
/// the single-process one even past the cap.
void merge_issue(AuditReport& report, const std::string& issue) {
  if (report.issues.size() > kMaxIssues) return;
  if (report.issues.size() == kMaxIssues) {
    report.issues.push_back("... further issues suppressed");
    return;
  }
  report.issues.push_back(issue);
}

// ---------------------------------------------------------------------------
// Pure arithmetic core: premise normalization, Farkas checking, model
// evaluation. Everything below this banner uses only hv/util arithmetic.
// ---------------------------------------------------------------------------

std::string premise_key(const NamedTerms& terms, Relation rel, const BigInt& bound) {
  std::string key = rel == Relation::kLe ? "<=|" : ">=|";
  key += bound.to_string();
  for (const auto& [name, coeff] : terms) {
    key += '|';
    key += name;
    key += ':';
    key += coeff.to_string();
  }
  return key;
}

/// The auditor's own normalization of a raw (traced) constraint under a
/// polarity — the mirror of the certifying solver's: divide the term vector
/// by its content, tighten the bound over the integers, split equalities
/// into two inequalities, and turn negated bounds into strict complements.
struct Normalized {
  bool constant = false;
  bool value = false;        // when constant
  bool bad_negation = false; // a negated equality: not expressible as a bound
  std::vector<Premise> premises;
};

Normalized normalize(const TracedConstraint& raw, bool positive) {
  Normalized out;
  if (raw.terms.empty()) {
    out.constant = true;
    const int sign = raw.constant.sign();
    switch (raw.rel) {
      case Relation::kLe:
        out.value = sign <= 0;
        break;
      case Relation::kGe:
        out.value = sign >= 0;
        break;
      case Relation::kEq:
        out.value = sign == 0;
        break;
    }
    if (!positive) out.value = !out.value;
    return out;
  }

  BigInt content = 0;
  for (const auto& [name, coeff] : raw.terms) content = BigInt::gcd(content, coeff);
  NamedTerms terms;
  terms.reserve(raw.terms.size());
  for (const auto& [name, coeff] : raw.terms) terms.emplace_back(name, coeff / content);

  const auto premise = [&terms](Relation rel, BigInt bound) {
    Premise p;
    p.terms = terms;
    p.rel = rel;
    p.bound = std::move(bound);
    return p;
  };

  switch (raw.rel) {
    case Relation::kLe: {
      BigInt bound = BigInt::floor_div(-raw.constant, content);
      out.premises.push_back(positive ? premise(Relation::kLe, std::move(bound))
                                      : premise(Relation::kGe, bound + BigInt(1)));
      return out;
    }
    case Relation::kGe: {
      BigInt bound = BigInt::ceil_div(-raw.constant, content);
      out.premises.push_back(positive ? premise(Relation::kGe, std::move(bound))
                                      : premise(Relation::kLe, bound - BigInt(1)));
      return out;
    }
    case Relation::kEq: {
      BigInt quotient;
      BigInt remainder;
      BigInt::div_mod(-raw.constant, content, quotient, remainder);
      if (!remainder.is_zero()) {
        // The equality can never hold over the integers.
        out.constant = true;
        out.value = !positive;
        return out;
      }
      if (!positive) {
        out.bad_negation = true;
        return out;
      }
      out.premises.push_back(premise(Relation::kGe, quotient));
      out.premises.push_back(premise(Relation::kLe, std::move(quotient)));
      return out;
    }
  }
  throw InternalError("unreachable relation");
}

/// Audits one schema's evidence against its re-encoded trace. Owns the tree
/// walk's context: the atom bindings made by propagation/decision nodes and
/// the assumption stack of enclosing integer branches.
class SchemaAuditor {
 public:
  SchemaAuditor(const Trace& trace, AuditReport& report, std::string context)
      : trace_(trace),
        report_(report),
        context_(std::move(context)),
        assignment_(trace.atoms.size(), -1),
        atom_cache_(trace.atoms.size()) {
    for (const TracedConstraint& constraint : trace_.constraints) {
      const Normalized normalized = normalize(constraint, /*positive=*/true);
      if (normalized.constant) {
        if (!normalized.value) constraints_false_ = true;
        continue;
      }
      for (const Premise& premise : normalized.premises) {
        constraint_keys_.insert(premise_key(premise.terms, premise.rel, premise.bound));
      }
    }
  }

  bool audit_proof(const Node& root) { return verify(root, 0); }

  bool audit_model(const std::vector<std::pair<std::string, BigInt>>& model) {
    std::map<std::string, BigInt> values;
    for (const auto& [name, value] : model) {
      if (!values.emplace(name, value).second) {
        return fail("model assigns '" + name + "' twice");
      }
    }
    bool ok = true;
    const auto evaluate = [&](const TracedConstraint& constraint,
                              bool& truth) -> bool {  // false: missing variable
      BigInt total = constraint.constant;
      for (const auto& [name, coeff] : constraint.terms) {
        const auto it = values.find(name);
        if (it == values.end()) {
          fail("model misses variable '" + name + "'");
          return false;
        }
        total += coeff * it->second;
      }
      const int sign = total.sign();
      switch (constraint.rel) {
        case Relation::kLe:
          truth = sign <= 0;
          break;
        case Relation::kGe:
          truth = sign >= 0;
          break;
        case Relation::kEq:
          truth = sign == 0;
          break;
      }
      return true;
    };
    for (std::size_t i = 0; i < trace_.constraints.size(); ++i) {
      bool truth = false;
      if (!evaluate(trace_.constraints[i], truth)) return false;
      if (!truth) {
        ok = fail("model violates constraint #" + std::to_string(i));
      }
    }
    for (std::size_t c = 0; c < trace_.clauses.size(); ++c) {
      bool satisfied = false;
      for (const TracedLiteral& literal : trace_.clauses[c]) {
        if (literal.atom < 0 || literal.atom >= static_cast<int>(trace_.atoms.size())) {
          return fail("clause cites an invalid atom index");
        }
        bool truth = false;
        if (!evaluate(trace_.atoms[static_cast<std::size_t>(literal.atom)], truth)) return false;
        if (truth == literal.positive) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        ok = fail("model violates clause #" + std::to_string(c));
      }
    }
    return ok;
  }

 private:
  bool fail(const std::string& message) {
    add_issue(report_, context_, message);
    return false;
  }

  const Normalized& normalized_atom(int atom, bool positive) {
    auto& slot = atom_cache_[static_cast<std::size_t>(atom)][positive ? 1 : 0];
    if (!slot) slot = normalize(trace_.atoms[static_cast<std::size_t>(atom)], positive);
    return *slot;
  }

  bool premise_ok(const Premise& premise) {
    if (premise.rel == Relation::kEq) return fail("a premise may not be an equality");
    if (premise.terms.empty()) {
      // A constant statement: trivially-true ones are always entailed; a
      // contradictory one must trace back to something that normalizes to
      // constant falsehood.
      const bool trivially_true = premise.rel == Relation::kLe ? !premise.bound.is_negative()
                                                               : !premise.bound.is_positive();
      if (trivially_true) return true;
      switch (premise.origin) {
        case PremiseOrigin::kConstraint:
          if (constraints_false_) return true;
          return fail("premise claims a constraint is constant-false, but none is");
        case PremiseOrigin::kAtom: {
          if (premise.atom < 0 || premise.atom >= static_cast<int>(trace_.atoms.size())) {
            return fail("premise cites an invalid atom index");
          }
          if (assignment_[static_cast<std::size_t>(premise.atom)] !=
              (premise.positive ? 1 : 0)) {
            return fail("premise cites atom #" + std::to_string(premise.atom) +
                        " with a polarity the path does not bind");
          }
          const Normalized& normalized = normalized_atom(premise.atom, premise.positive);
          if (normalized.constant && !normalized.value) return true;
          return fail("premise claims atom #" + std::to_string(premise.atom) +
                      " is constant-false, but it is not");
        }
        case PremiseOrigin::kBranch:
          return fail("branch assumptions are never constant");
      }
      return fail("invalid premise origin");
    }

    switch (premise.origin) {
      case PremiseOrigin::kConstraint:
        if (constraint_keys_.count(premise_key(premise.terms, premise.rel, premise.bound)) > 0) {
          return true;
        }
        return fail("premise is not among the asserted constraints");
      case PremiseOrigin::kAtom: {
        if (premise.atom < 0 || premise.atom >= static_cast<int>(trace_.atoms.size())) {
          return fail("premise cites an invalid atom index");
        }
        if (assignment_[static_cast<std::size_t>(premise.atom)] != (premise.positive ? 1 : 0)) {
          return fail("premise cites atom #" + std::to_string(premise.atom) +
                      " with a polarity the path does not bind");
        }
        const Normalized& normalized = normalized_atom(premise.atom, premise.positive);
        if (normalized.bad_negation) {
          return fail("premise cites the negation of an equality atom");
        }
        if (normalized.constant) {
          return fail("premise content does not match its constant atom");
        }
        for (const Premise& candidate : normalized.premises) {
          if (candidate.terms == premise.terms && candidate.rel == premise.rel &&
              candidate.bound == premise.bound) {
            return true;
          }
        }
        return fail("premise content does not match the auditor's normalization of atom #" +
                    std::to_string(premise.atom));
      }
      case PremiseOrigin::kBranch:
        for (const Premise& assumption : branch_stack_) {
          if (assumption.terms == premise.terms && assumption.rel == premise.rel &&
              assumption.bound == premise.bound) {
            return true;
          }
        }
        return fail("premise is not among the enclosing branch assumptions");
    }
    return fail("invalid premise origin");
  }

  bool check_farkas(const Node& node) {
    ++report_.farkas_nodes;
    if (node.farkas.empty()) return fail("empty Farkas combination");
    std::map<std::string, Rational> sum;
    Rational rhs;
    for (const auto& [premise, multiplier] : node.farkas) {
      if (!multiplier.is_positive()) return fail("non-positive Farkas multiplier");
      if (!premise_ok(premise)) return false;
      // Convert to <=-form: sum(terms) <= bound, negating >= premises.
      const bool le = premise.rel == Relation::kLe;
      for (const auto& [name, coeff] : premise.terms) {
        const Rational scaled = multiplier * Rational(coeff);
        sum[name] += le ? scaled : -scaled;
      }
      const Rational scaled_bound = multiplier * Rational(premise.bound);
      rhs += le ? scaled_bound : -scaled_bound;
    }
    for (const auto& [name, coeff] : sum) {
      if (!coeff.is_zero()) {
        return fail("Farkas combination does not cancel variable '" + name + "'");
      }
    }
    if (!rhs.is_negative()) {
      return fail("Farkas combination is not contradictory (0 <= " + rhs.to_string() + ")");
    }
    return true;
  }

  bool literal_false(const TracedLiteral& literal) {
    if (literal.atom < 0 || literal.atom >= static_cast<int>(trace_.atoms.size())) return false;
    const signed char value = assignment_[static_cast<std::size_t>(literal.atom)];
    if (value != -1) return value == (literal.positive ? 0 : 1);
    const Normalized& normalized = normalized_atom(literal.atom, literal.positive);
    return normalized.constant && !normalized.value && !normalized.bad_negation;
  }

  bool verify(const Node& node, int depth) {
    if (depth > kMaxWalkDepth) return fail("proof tree too deep");
    switch (node.kind) {
      case NodeKind::kFarkas:
        return check_farkas(node);

      case NodeKind::kClauseConflict: {
        if (node.clause < 0 || node.clause >= static_cast<int>(trace_.clauses.size())) {
          return fail("conflict cites an invalid clause index");
        }
        for (const TracedLiteral& literal : trace_.clauses[static_cast<std::size_t>(node.clause)]) {
          if (!literal_false(literal)) {
            return fail("clause #" + std::to_string(node.clause) +
                        " is not conflicting: a literal is not false");
          }
        }
        return true;
      }

      case NodeKind::kPropagation: {
        if (node.clause < 0 || node.clause >= static_cast<int>(trace_.clauses.size())) {
          return fail("propagation cites an invalid clause index");
        }
        if (node.atom < 0 || node.atom >= static_cast<int>(trace_.atoms.size())) {
          return fail("propagation cites an invalid atom index");
        }
        if (node.first == nullptr) return fail("propagation without a child");
        bool found_forced = false;
        for (const TracedLiteral& literal : trace_.clauses[static_cast<std::size_t>(node.clause)]) {
          if (literal.atom == node.atom && literal.positive == node.positive) {
            found_forced = true;
            continue;
          }
          if (!literal_false(literal)) {
            return fail("clause #" + std::to_string(node.clause) +
                        " does not force the propagated literal: another literal is not false");
          }
        }
        if (!found_forced) {
          return fail("propagated literal is not in clause #" + std::to_string(node.clause));
        }
        const std::size_t slot = static_cast<std::size_t>(node.atom);
        const signed char saved = assignment_[slot];
        assignment_[slot] = node.positive ? 1 : 0;
        const bool ok = verify(*node.first, depth + 1);
        assignment_[slot] = saved;
        return ok;
      }

      case NodeKind::kDecision: {
        if (node.atom < 0 || node.atom >= static_cast<int>(trace_.atoms.size())) {
          return fail("decision cites an invalid atom index");
        }
        if (node.first == nullptr || node.second == nullptr) {
          return fail("decision without both children");
        }
        const std::size_t slot = static_cast<std::size_t>(node.atom);
        const signed char saved = assignment_[slot];
        assignment_[slot] = 1;
        const bool true_ok = verify(*node.first, depth + 1);
        assignment_[slot] = 0;
        const bool false_ok = true_ok && verify(*node.second, depth + 1);
        assignment_[slot] = saved;
        return true_ok && false_ok;
      }

      case NodeKind::kBranch: {
        // e <= k  \/  e >= k+1 is exhaustive for any integer-valued e; every
        // named variable is an integer, so any integer combination is.
        if (node.first == nullptr || node.second == nullptr) {
          return fail("branch without both children");
        }
        Premise low;
        low.origin = PremiseOrigin::kBranch;
        low.terms = node.branch_terms;
        low.rel = Relation::kLe;
        low.bound = node.branch_bound;
        branch_stack_.push_back(std::move(low));
        const bool low_ok = verify(*node.first, depth + 1);
        branch_stack_.pop_back();
        if (!low_ok) return false;
        Premise high;
        high.origin = PremiseOrigin::kBranch;
        high.terms = node.branch_terms;
        high.rel = Relation::kGe;
        high.bound = node.branch_bound + BigInt(1);
        branch_stack_.push_back(std::move(high));
        const bool high_ok = verify(*node.second, depth + 1);
        branch_stack_.pop_back();
        return high_ok;
      }
    }
    return fail("invalid proof node kind");
  }

  const Trace& trace_;
  AuditReport& report_;
  std::string context_;
  std::set<std::string> constraint_keys_;
  bool constraints_false_ = false;
  std::vector<signed char> assignment_;
  std::vector<Premise> branch_stack_;
  std::vector<std::array<std::optional<Normalized>, 2>> atom_cache_;
};

// ---------------------------------------------------------------------------
// Certificate-level driver: model/property reconstruction, re-encoding,
// coverage, verdict composition. Split into phases so the sharded audit
// (AuditOptions::jobs > 1) schedules the *same* code the single-process
// audit runs inline — a shard boundary is just a fresh trace encoder, which
// the error-recovery path below always allowed mid-list anyway.
// ---------------------------------------------------------------------------

std::string schema_key(std::int64_t query_index, const Schema& schema) {
  std::string key = "q" + std::to_string(query_index) + "|c";
  for (const int guard : schema.unlock_order) {
    key += std::to_string(guard);
    key += ',';
  }
  key += "|k";
  for (const int cut : schema.cut_positions) {
    key += std::to_string(cut);
    key += ',';
  }
  return key;
}

bool schema_shape_ok(const Schema& schema, int guard_count, std::size_t cut_count,
                     std::string& why) {
  std::vector<bool> used(static_cast<std::size_t>(guard_count), false);
  for (const int guard : schema.unlock_order) {
    if (guard < 0 || guard >= guard_count) {
      why = "guard index out of range";
      return false;
    }
    if (used[static_cast<std::size_t>(guard)]) {
      why = "duplicate guard in unlock order";
      return false;
    }
    used[static_cast<std::size_t>(guard)] = true;
  }
  if (schema.cut_positions.size() != cut_count) {
    why = "cut count does not match the query";
    return false;
  }
  int previous = 0;
  for (const int cut : schema.cut_positions) {
    if (cut < previous || cut >= schema.segment_count()) {
      why = "cut positions not non-decreasing within the segments";
      return false;
    }
    previous = cut;
  }
  return true;
}

std::string verdict_combine(const std::vector<std::string>& verdicts) {
  bool all_hold = !verdicts.empty();
  for (const std::string& verdict : verdicts) {
    if (verdict == "violated") return "violated";
    if (verdict != "holds") all_hold = false;
  }
  return all_hold ? "holds" : "unknown";
}

struct ComponentOutcome {
  std::string automaton_name;
  std::map<std::string, std::string> verdicts;  // property -> audited verdict
};

/// Everything one component audit shares across its property audits.
struct ComponentState {
  const ComponentCert* cert = nullptr;
  std::string context;
  std::optional<ta::ThresholdAutomaton> ta;
  std::optional<GuardAnalysis> analysis;
};

/// Reconstructs the component's model and guard analysis; issues land in
/// `sink`. Returns true iff property audits can proceed.
bool reconstruct_component(ComponentState& state, AuditReport& sink) {
  const ComponentCert& component = *state.cert;
  try {
    if (component.model.kind == "text") {
      state.ta = ta::parse_ta(component.model.text).one_round_reduction();
    } else if (component.model.kind == "builtin") {
      state.ta = builtin_model(component.model.key);
    } else {
      add_issue(sink, state.context, "invalid model kind '" + component.model.kind + "'");
      return false;
    }
  } catch (const Error& error) {
    add_issue(sink, state.context, std::string("model reconstruction failed: ") + error.what());
    return false;
  }
  try {
    state.analysis.emplace(*state.ta);
  } catch (const Error& error) {
    add_issue(sink, state.context, std::string("guard analysis failed: ") + error.what());
    return false;
  }
  return true;
}

/// Everything one property audit accumulates across its phases.
struct PropertyAuditState {
  const PropertyCert* cert = nullptr;
  std::string context;
  std::optional<spec::Property> property;
  /// Reconstruction succeeded and the audit ran at all; false means the
  /// audited verdict is "failed" no matter what the shards found.
  bool audited = false;
  /// The claimed verdict itself was invalid — "failed" even when the issue
  /// cap swallowed the diagnostic.
  bool hard_failed = false;
  bool shapes_ok = true;
  std::size_t query_count = 0;
  std::deque<QueryCone> cones;

  struct Entry {
    const SchemaCert* cert = nullptr;
    bool green = false;
    bool seen_in_enumeration = false;
  };
  std::map<std::string, Entry> covered;
  std::map<std::string, bool> pruned;  // key -> seen in enumeration
  /// Covered schemas grouped per query, sorted so consecutive entries share
  /// chain prefixes (the trace encoder reuses them exactly like the
  /// certifying run did). Shards slice these lists contiguously.
  std::vector<std::vector<const SchemaCert*>> by_query;
};

/// Phase 1: property reconstruction, verdict/shape validation, evidence
/// grouping, cone construction. Returns true iff the evidence and coverage
/// phases should run.
bool prepare_property(const GuardAnalysis& analysis, const ta::ThresholdAutomaton& ta,
                      PropertyAuditState& state, AuditReport& sink) {
  const PropertyCert& cert = *state.cert;
  const std::string& context = state.context;

  try {
    if (cert.source.kind == "ltl") {
      if (cert.source.formula.empty()) {
        add_issue(sink, context, "ltl property source without a formula");
        return false;
      }
      state.property = spec::compile(ta, cert.name, cert.source.formula);
    } else if (cert.source.kind == "bundled") {
      const std::vector<spec::Property> bundled = bundled_properties(ta);
      const auto it = std::find_if(bundled.begin(), bundled.end(), [&](const spec::Property& p) {
        return p.name == cert.name;
      });
      if (it == bundled.end()) {
        add_issue(sink, context, "not among the automaton's bundled properties");
        return false;
      }
      state.property = *it;
    } else {
      add_issue(sink, context, "invalid property source kind '" + cert.source.kind + "'");
      return false;
    }
  } catch (const Error& error) {
    add_issue(sink, context, std::string("property reconstruction failed: ") + error.what());
    return false;
  }
  state.audited = true;
  ++sink.properties_audited;

  if (cert.verdict != "holds" && cert.verdict != "violated" && cert.verdict != "unknown") {
    add_issue(sink, context, "invalid verdict '" + cert.verdict + "'");
    state.hard_failed = true;
    return false;
  }
  if (cert.verdict == "unknown") {
    sink.warnings.push_back(context + ": verdict 'unknown' certifies nothing");
  }
  if (cert.verdict == "holds" && !cert.complete) {
    add_issue(sink, context, "verdict 'holds' without a completeness claim");
  }

  const spec::Property& property = *state.property;
  state.query_count = property.queries.size();
  if (cert.property_directed_pruning) {
    for (const spec::ReachQuery& query : property.queries) {
      state.cones.emplace_back(analysis, query);
    }
  }

  // Validate shapes, then group the covered schemas per query.
  state.by_query.resize(state.query_count);
  for (const SchemaCert& entry : cert.schemas) {
    std::string why;
    if (entry.query_index >= static_cast<std::int64_t>(state.query_count)) {
      add_issue(sink, context, "schema evidence cites query #" +
                                   std::to_string(entry.query_index) + " of " +
                                   std::to_string(state.query_count));
      state.shapes_ok = false;
      continue;
    }
    const std::size_t q = static_cast<std::size_t>(entry.query_index);
    if (!schema_shape_ok(entry.schema, analysis.guard_count(), property.queries[q].cuts.size(),
                         why)) {
      add_issue(sink, context, "malformed schema: " + why);
      state.shapes_ok = false;
      continue;
    }
    const std::string key = schema_key(entry.query_index, entry.schema);
    if (!state.covered.emplace(key, PropertyAuditState::Entry{&entry, false, false}).second) {
      add_issue(sink, context, "duplicate schema evidence (" + key + ")");
      state.shapes_ok = false;
      continue;
    }
    state.by_query[q].push_back(&entry);
  }
  for (const PrunedCert& entry : cert.pruned) {
    std::string why;
    if (entry.query_index >= static_cast<std::int64_t>(state.query_count) ||
        !schema_shape_ok(entry.schema, analysis.guard_count(),
                         property.queries[static_cast<std::size_t>(entry.query_index)].cuts.size(),
                         why)) {
      add_issue(sink, context, "malformed pruned-schema entry");
      state.shapes_ok = false;
      continue;
    }
    if (!state.pruned.emplace(schema_key(entry.query_index, entry.schema), false).second) {
      add_issue(sink, context, "duplicate pruned-schema entry");
      state.shapes_ok = false;
    }
  }
  for (std::size_t q = 0; q < state.query_count; ++q) {
    std::sort(state.by_query[q].begin(), state.by_query[q].end(),
              [](const SchemaCert* lhs, const SchemaCert* rhs) {
                if (lhs->schema.unlock_order != rhs->schema.unlock_order) {
                  return lhs->schema.unlock_order < rhs->schema.unlock_order;
                }
                return lhs->schema.cut_positions < rhs->schema.cut_positions;
              });
  }
  return true;
}

/// Phase 2: re-encode and audit one contiguous range of one query's sorted
/// evidence list. Ranges over the same query may run concurrently: each
/// gets its own trace encoder (re-encoding is deterministic per schema —
/// the error-recovery path below restarts the encoder mid-list and always
/// has), and each covered-map entry belongs to exactly one range.
void audit_entry_range(const GuardAnalysis& analysis, PropertyAuditState& state, std::size_t q,
                       std::size_t lo, std::size_t hi, AuditReport& sink) {
  if (lo >= hi) return;
  const spec::Property& property = *state.property;
  const QueryCone* cone = state.cert->property_directed_pruning ? &state.cones[q] : nullptr;
  auto encoder = std::make_unique<IncrementalSchemaEncoder>(
      analysis, property.queries[q], /*branch_budget=*/1, cone, EncoderMode::kTrace);
  for (std::size_t i = lo; i < hi; ++i) {
    const SchemaCert* entry = state.by_query[q][i];
    const std::string entry_context =
        state.context + ", " + schema_key(entry->query_index, entry->schema);
    Trace trace;
    try {
      trace = encoder->trace(entry->schema);
    } catch (const Error& error) {
      add_issue(sink, entry_context, std::string("re-encoding failed: ") + error.what());
      encoder = std::make_unique<IncrementalSchemaEncoder>(
          analysis, property.queries[q], /*branch_budget=*/1, cone, EncoderMode::kTrace);
      continue;
    }
    SchemaAuditor auditor(trace, sink, entry_context);
    bool green = false;
    if (entry->sat) {
      green = auditor.audit_model(entry->model);
      ++sink.models_checked;
    } else {
      if (entry->proof == nullptr) {
        add_issue(sink, entry_context, "unsat evidence without a proof");
      } else {
        green = auditor.audit_proof(*entry->proof);
      }
      ++sink.schemas_covered;
    }
    state.covered[schema_key(entry->query_index, entry->schema)].green = green;
  }
}

/// Phase 3: coverage. A holds verdict claims the audited refutations
/// exhaust the schema space; re-enumerate and match every schema against
/// the covered set or a reproduced cone decision. A violated verdict needs
/// one validated counterexample model.
void audit_coverage(const GuardAnalysis& analysis, PropertyAuditState& state,
                    AuditReport& sink) {
  const PropertyCert& cert = *state.cert;
  const std::string& context = state.context;
  const spec::Property& property = *state.property;

  if (cert.verdict == "holds" && state.shapes_ok) {
    for (std::size_t q = 0; q < state.query_count; ++q) {
      const int cut_count = static_cast<int>(property.queries[q].cuts.size());
      const checker::EnumerationOutcome outcome = checker::enumerate_schemas(
          analysis, cut_count, cert.enumeration, [&](const Schema& schema) {
            const std::string key = schema_key(static_cast<std::int64_t>(q), schema);
            if (cert.property_directed_pruning && !state.cones[q].schema_feasible(schema)) {
              const auto it = state.pruned.find(key);
              if (it == state.pruned.end()) {
                add_issue(sink, context, "cone-pruned schema missing from the manifest (" +
                                             key + ")");
              } else {
                it->second = true;
                ++sink.schemas_pruned;
              }
              return true;
            }
            const auto it = state.covered.find(key);
            if (it == state.covered.end()) {
              add_issue(sink, context, "schema not covered by any refutation (" + key + ")");
              return true;
            }
            it->second.seen_in_enumeration = true;
            if (it->second.cert->sat) {
              add_issue(sink, context, "sat evidence under a holds verdict (" + key + ")");
            } else if (!it->second.green) {
              // The refutation audit already recorded its own issue.
            }
            return true;
          });
      if (outcome.budget_exhausted) {
        add_issue(sink, context,
                  "enumeration budget exhausted while re-deriving coverage of query #" +
                      std::to_string(q));
      }
    }
    for (const auto& [key, entry] : state.covered) {
      if (!entry.seen_in_enumeration) {
        add_issue(sink, context, "evidence for a schema outside the enumerated space (" +
                                     key + ")");
      }
    }
    for (const auto& [key, seen] : state.pruned) {
      if (!seen) {
        add_issue(sink, context,
                  "pruned entry the auditor's enumeration never produced (" + key + ")");
      }
    }
  } else if (cert.verdict == "violated") {
    // The witness flag is derived from the covered map (a sat entry whose
    // model audit came back green), so it is the same whatever schedule ran
    // the evidence phase.
    bool sat_witness_green = false;
    for (const auto& [key, entry] : state.covered) {
      if (entry.cert->sat && entry.green) {
        sat_witness_green = true;
        break;
      }
    }
    if (!sat_witness_green) {
      add_issue(sink, context, "verdict 'violated' without a validated counterexample model");
    }
  }
}

/// The audited verdict of one property after all its phases settled. The
/// `green` flag must reflect the *merged, capped* report — the sequential
/// audit derives it the same way, so both schedules agree even past the
/// issue cap.
std::string audited_verdict(const PropertyAuditState& state, bool green) {
  if (!state.audited || state.hard_failed) return "failed";
  return green ? state.cert->verdict : "failed";
}

std::string describe_component(const ComponentCert& component, std::size_t index) {
  if (component.model.kind == "builtin") return "component '" + component.model.key + "'";
  return "component #" + std::to_string(index);
}

/// Recomposes the Theorem-6 verdicts from the audited per-property verdicts
/// (Proposition 2 of [10] + Theorem 6 of the paper), and compares with the
/// claims. The bv-broadcast gadget verdicts gate everything downstream.
void recompose_theorem6(const Certificate& certificate,
                        const std::vector<ComponentOutcome>& outcomes, AuditReport& report) {
  if (!certificate.theorem6) return;
  const auto component_named = [&](const std::string& name) -> const ComponentOutcome* {
    for (const ComponentOutcome& outcome : outcomes) {
      if (outcome.automaton_name == name) return &outcome;
    }
    return nullptr;
  };
  const ComponentOutcome* bv = component_named("BvBroadcast");
  const ComponentOutcome* consensus = component_named("SimplifiedConsensus");
  const auto gather = [&](const std::vector<std::string>& consensus_names) {
    std::vector<std::string> verdicts;
    if (bv == nullptr || bv->verdicts.empty()) {
      verdicts.push_back("unknown");  // gadget not certified
    } else {
      for (const auto& [name, verdict] : bv->verdicts) verdicts.push_back(verdict);
    }
    for (const std::string& name : consensus_names) {
      if (consensus == nullptr) {
        verdicts.push_back("unknown");
        continue;
      }
      const auto it = consensus->verdicts.find(name);
      verdicts.push_back(it == consensus->verdicts.end() ? "unknown" : it->second);
    }
    // An audit failure must never strengthen a claim; treat it as unknown
    // unless the property claims a violation.
    for (std::string& verdict : verdicts) {
      if (verdict == "failed") verdict = "unknown";
    }
    return verdicts;
  };
  const std::string agreement =
      verdict_combine(gather({"Inv1_0", "Inv1_1", "Inv2_0", "Inv2_1"}));
  const std::string validity = verdict_combine(gather({"Inv2_0", "Inv2_1"}));
  const std::string termination =
      verdict_combine(gather({"SRoundTerm", "Dec_0", "Dec_1", "Good_0", "Good_1"}));
  const auto check_claim = [&](const char* what, const std::string& claimed,
                               const std::string& recomputed) {
    if (claimed != recomputed) {
      add_issue(report, "theorem6", std::string(what) + " claimed '" + claimed +
                                        "' but the audited properties compose to '" +
                                        recomputed + "'");
    }
  };
  check_claim("agreement", certificate.theorem6->agreement, agreement);
  check_claim("validity", certificate.theorem6->validity, validity);
  check_claim("termination", certificate.theorem6->termination, termination);
}

/// Sums one phase report into the merged report, re-applying the issue cap
/// as if every issue had been added directly.
void merge_report(AuditReport& report, const AuditReport& part) {
  for (const std::string& issue : part.issues) merge_issue(report, issue);
  for (const std::string& warning : part.warnings) report.warnings.push_back(warning);
  report.properties_audited += part.properties_audited;
  report.schemas_covered += part.schemas_covered;
  report.schemas_pruned += part.schemas_pruned;
  report.models_checked += part.models_checked;
  report.farkas_nodes += part.farkas_nodes;
}

/// The single-process audit: every phase runs inline, in canonical order.
AuditReport audit_sequential(const Certificate& certificate) {
  AuditReport report;
  std::vector<ComponentOutcome> outcomes;

  for (std::size_t ci = 0; ci < certificate.components.size(); ++ci) {
    const ComponentCert& component = certificate.components[ci];
    outcomes.emplace_back();
    ComponentOutcome& outcome = outcomes.back();
    for (const PropertyCert& property : component.properties) {
      outcome.verdicts[property.name] = "failed";
    }

    ComponentState comp;
    comp.cert = &component;
    comp.context = describe_component(component, ci);
    const bool model_ok = reconstruct_component(comp, report);
    if (comp.ta) outcome.automaton_name = comp.ta->name();
    if (!model_ok) continue;

    for (const PropertyCert& property_cert : component.properties) {
      PropertyAuditState state;
      state.cert = &property_cert;
      state.context = comp.context + ", property '" + property_cert.name + "'";
      const std::size_t issues_before = report.issues.size();
      if (prepare_property(*comp.analysis, *comp.ta, state, report)) {
        for (std::size_t q = 0; q < state.query_count; ++q) {
          audit_entry_range(*comp.analysis, state, q, 0, state.by_query[q].size(), report);
        }
        audit_coverage(*comp.analysis, state, report);
      }
      const bool green = report.issues.size() == issues_before;
      outcome.verdicts[property_cert.name] = audited_verdict(state, green);
    }
  }

  recompose_theorem6(certificate, outcomes, report);
  report.ok = report.issues.empty();
  return report;
}

/// The sharded audit: the same phases, scheduled as a DAG and merged back
/// in canonical (component, property, shard) order.
AuditReport audit_sharded(const Certificate& certificate, int jobs) {
  namespace dag = hv::pipeline::dag;

  struct PropTask {
    PropertyAuditState state;
    AuditReport prep;
    std::vector<AuditReport> shards;
    AuditReport coverage;
  };
  struct CompTask {
    ComponentState state;
    AuditReport sink;
    std::deque<PropTask> props;  // deque: PropTask is move-only, never relocated
  };

  // deque: node lambdas hold references into the tasks, which must stay
  // stable while later tasks are appended.
  std::deque<CompTask> comps;
  dag::Graph graph;
  for (std::size_t ci = 0; ci < certificate.components.size(); ++ci) {
    const ComponentCert& component = certificate.components[ci];
    comps.emplace_back();
    CompTask& comp = comps.back();
    comp.state.cert = &component;
    comp.state.context = describe_component(component, ci);
    for (std::size_t pi = 0; pi < component.properties.size(); ++pi) comp.props.emplace_back();
    const dag::NodeId comp_node =
        graph.add("component#" + std::to_string(ci),
                  [&comp] { return reconstruct_component(comp.state, comp.sink); });
    for (std::size_t pi = 0; pi < component.properties.size(); ++pi) {
      const PropertyCert& property_cert = component.properties[pi];
      PropTask& prop = comp.props[pi];
      prop.state.cert = &property_cert;
      prop.state.context = comp.state.context + ", property '" + property_cert.name + "'";
      prop.shards.resize(static_cast<std::size_t>(jobs));
      const std::string id = std::to_string(ci) + "." + std::to_string(pi);
      const dag::NodeId prep_node = graph.add(
          "prepare#" + id,
          [&comp, &prop] {
            return prepare_property(*comp.state.analysis, *comp.state.ta, prop.state,
                                    prop.prep);
          },
          {comp_node});
      std::vector<dag::NodeId> shard_nodes;
      for (int k = 0; k < jobs; ++k) {
        shard_nodes.push_back(graph.add(
            "shard#" + id + "." + std::to_string(k),
            [&comp, &prop, k, jobs] {
              // Shard k audits the k-th contiguous slice of the
              // concatenated (query-grouped, prefix-sorted) evidence list.
              std::size_t total = 0;
              for (const auto& entries : prop.state.by_query) total += entries.size();
              const std::size_t lo =
                  total * static_cast<std::size_t>(k) / static_cast<std::size_t>(jobs);
              const std::size_t hi =
                  total * static_cast<std::size_t>(k + 1) / static_cast<std::size_t>(jobs);
              std::size_t base = 0;
              for (std::size_t q = 0; q < prop.state.by_query.size(); ++q) {
                const std::size_t n = prop.state.by_query[q].size();
                const std::size_t a = std::max(lo, base);
                const std::size_t b = std::min(hi, base + n);
                if (a < b) {
                  audit_entry_range(*comp.state.analysis, prop.state, q, a - base, b - base,
                                    prop.shards[static_cast<std::size_t>(k)]);
                }
                base += n;
              }
              return true;
            },
            {prep_node}));
      }
      graph.add(
          "coverage#" + id,
          [&comp, &prop] {
            audit_coverage(*comp.state.analysis, prop.state, prop.coverage);
            return true;
          },
          shard_nodes);
    }
  }

  dag::RunOptions run_options;
  run_options.lanes = jobs;
  dag::run(graph, run_options);

  AuditReport report;
  std::vector<ComponentOutcome> outcomes;
  for (std::size_t ci = 0; ci < comps.size(); ++ci) {
    CompTask& comp = comps[ci];
    outcomes.emplace_back();
    ComponentOutcome& outcome = outcomes.back();
    for (const PropertyCert& property : comp.state.cert->properties) {
      outcome.verdicts[property.name] = "failed";
    }
    if (comp.state.ta) outcome.automaton_name = comp.state.ta->name();
    merge_report(report, comp.sink);
    for (PropTask& prop : comp.props) {
      const std::size_t issues_before = report.issues.size();
      merge_report(report, prop.prep);
      for (const AuditReport& shard : prop.shards) merge_report(report, shard);
      merge_report(report, prop.coverage);
      const bool green = report.issues.size() == issues_before;
      outcome.verdicts[prop.state.cert->name] = audited_verdict(prop.state, green);
    }
  }

  recompose_theorem6(certificate, outcomes, report);
  report.ok = report.issues.empty();
  return report;
}

}  // namespace

AuditReport audit_certificate(const Certificate& certificate) {
  return audit_sequential(certificate);
}

AuditReport audit_certificate(const Certificate& certificate, const AuditOptions& options) {
  if (options.jobs <= 1) return audit_sequential(certificate);
  return audit_sharded(certificate, options.jobs);
}

std::string AuditReport::to_string() const {
  std::ostringstream os;
  os << (ok ? "audit: PASS" : "audit: FAIL") << "\n";
  os << "  properties audited:   " << properties_audited << "\n";
  os << "  refutations checked:  " << schemas_covered << " (" << farkas_nodes
     << " Farkas leaves)\n";
  os << "  cone decisions replayed: " << schemas_pruned << "\n";
  os << "  models evaluated:     " << models_checked << "\n";
  for (const std::string& warning : warnings) os << "  warning: " << warning << "\n";
  for (const std::string& issue : issues) os << "  issue: " << issue << "\n";
  return os.str();
}

}  // namespace hv::cert
