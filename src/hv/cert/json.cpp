#include "hv/cert/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "hv/util/error.h"

namespace hv::cert {

namespace {

// Proof trees nest one object level per propagation/decision/branch node;
// real certificates stay well under a few thousand levels. The limit keeps
// a hostile deeply-nested file from exhausting the parser's stack.
constexpr int kMaxDepth = 8000;

[[noreturn]] void fail(std::size_t offset, const std::string& message) {
  throw InvalidArgument("json: " + message + " at offset " + std::to_string(offset));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value(0);
    skip_whitespace();
    if (position_ != text_.size()) fail(position_, "trailing characters");
    return value;
  }

 private:
  void skip_whitespace() {
    while (position_ < text_.size()) {
      const char c = text_[position_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++position_;
    }
  }

  char peek() {
    if (position_ >= text_.size()) fail(position_, "unexpected end of input");
    return text_[position_];
  }

  void expect(char c) {
    if (peek() != c) fail(position_, std::string("expected '") + c + "'");
    ++position_;
  }

  bool consume_keyword(std::string_view word) {
    if (text_.substr(position_, word.size()) != word) return false;
    position_ += word.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail(position_, "nesting too deep");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_keyword("true")) return Json(true);
        fail(position_, "invalid literal");
      case 'f':
        if (consume_keyword("false")) return Json(false);
        fail(position_, "invalid literal");
      case 'n':
        if (consume_keyword("null")) return Json();
        fail(position_, "invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object fields;
    skip_whitespace();
    if (peek() == '}') {
      ++position_;
      return Json(std::move(fields));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      fields.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++position_;
        continue;
      }
      expect('}');
      return Json(std::move(fields));
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array items;
    skip_whitespace();
    if (peek() == ']') {
      ++position_;
      return Json(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++position_;
        continue;
      }
      expect(']');
      return Json(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (position_ >= text_.size()) fail(position_, "unterminated string");
      const char c = text_[position_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail(position_ - 1, "raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (position_ >= text_.size()) fail(position_, "unterminated escape");
      const char escape = text_[position_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (position_ >= text_.size()) fail(position_, "unterminated \\u escape");
            const char h = text_[position_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(position_ - 1, "invalid \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are not combined;
          // certificates never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail(position_ - 1, "invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = position_;
    bool is_double = false;
    if (position_ < text_.size() && text_[position_] == '-') ++position_;
    while (position_ < text_.size()) {
      const char c = text_[position_];
      if (c >= '0' && c <= '9') {
        ++position_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++position_;
      } else {
        break;
      }
    }
    if (position_ == start || (position_ == start + 1 && text_[start] == '-')) {
      fail(start, "invalid number");
    }
    const std::size_t first_digit = text_[start] == '-' ? start + 1 : start;
    if (first_digit + 1 < position_ && text_[first_digit] == '0' &&
        text_[first_digit + 1] >= '0' && text_[first_digit + 1] <= '9') {
      fail(start, "leading zero");
    }
    const std::string token(text_.substr(start, position_ - start));
    if (is_double) {
      char* end = nullptr;
      const double value = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size() || !std::isfinite(value)) {
        fail(start, "invalid number");
      }
      return Json(value);
    }
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(token.c_str(), &end, 10);
    if (errno != 0 || end != token.c_str() + token.size()) fail(start, "integer out of range");
    return Json(static_cast<std::int64_t>(value));
  }

  std::string_view text_;
  std::size_t position_ = 0;
};

void write_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void indent_to(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw InvalidArgument("json: expected a boolean");
  return bool_;
}

std::int64_t Json::as_int() const {
  if (kind_ != Kind::kInt) throw InvalidArgument("json: expected an integer");
  return int_;
}

double Json::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ != Kind::kDouble) throw InvalidArgument("json: expected a number");
  return double_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw InvalidArgument("json: expected a string");
  return string_;
}

const Json::Array& Json::as_array() const {
  if (kind_ != Kind::kArray) throw InvalidArgument("json: expected an array");
  return array_;
}

const Json::Object& Json::as_object() const {
  if (kind_ != Kind::kObject) throw InvalidArgument("json: expected an object");
  return object_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* value = find(key);
  if (value == nullptr) {
    throw InvalidArgument("json: missing field '" + std::string(key) + "'");
  }
  return *value;
}

void Json::set(std::string key, Json value) {
  if (kind_ == Kind::kNull && object_.empty()) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw InvalidArgument("json: set() on a non-object");
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      out += std::to_string(int_);
      return;
    case Kind::kDouble: {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.17g", double_);
      out += buffer;
      return;
    }
    case Kind::kString:
      write_escaped(out, string_);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        indent_to(out, indent, depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      indent_to(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        indent_to(out, indent, depth + 1);
        write_escaped(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.write(out, indent, depth + 1);
      }
      indent_to(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::to_string() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::to_pretty_string() const {
  std::string out;
  write(out, 2, 0);
  out += '\n';
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace hv::cert
