#include "hv/cert/certificate.h"

#include <algorithm>
#include <map>

#include "hv/models/bv_broadcast.h"
#include "hv/models/naive_consensus.h"
#include "hv/models/simplified_consensus.h"
#include "hv/models/st_broadcast.h"
#include "hv/util/error.h"

namespace hv::cert {

namespace {

using smt::Relation;
using smt::proof::Node;
using smt::proof::NodeKind;
using smt::proof::Premise;
using smt::proof::PremiseOrigin;

// Nodes deeper than this are rejected on deserialization: real proof trees
// nest one level per propagation/decision/branch and stay far below, while a
// hostile file must not exhaust the recursive reader's stack.
constexpr int kMaxProofDepth = 6000;

std::string relation_to_string(Relation rel) {
  switch (rel) {
    case Relation::kLe:
      return "<=";
    case Relation::kGe:
      return ">=";
    case Relation::kEq:
      return "==";
  }
  throw InternalError("unreachable relation");
}

Relation relation_from_string(const std::string& text) {
  if (text == "<=") return Relation::kLe;
  if (text == ">=") return Relation::kGe;
  throw InvalidArgument("certificate: invalid premise relation '" + text + "'");
}

// ---------------------------------------------------------------------------
// Interning pools. Proof trees repeat the same premises thousands of times
// (shared chain prefixes assert identical constraint rows, and DPLL subtrees
// cite the same bounds in every conflict), so each property serializes a
// name pool and a premise pool once and the trees reference them by index.
// Wire forms (all compact arrays):
//   terms                [nameIdx, "coeff", nameIdx, "coeff", ...]
//   premise constraint   ["c", terms, rel, "bound"]
//           atom         ["a", atomIdx, 0|1, terms, rel, "bound"]
//           branch       ["b", terms, rel, "bound"]
//   node    farkas       ["F", premiseIdx, "mult", premiseIdx, "mult", ...]
//           conflict     ["C", clauseIdx]
//           propagation  ["P", clauseIdx, atomIdx, 0|1, child]
//           decision     ["D", atomIdx, trueChild, falseChild]
//           branch       ["B", terms, "bound", low, high]
// ---------------------------------------------------------------------------

class WritePool {
 public:
  std::int64_t name_id(const std::string& name) {
    const auto [it, inserted] = name_ids_.emplace(name, static_cast<std::int64_t>(names_.size()));
    if (inserted) names_.push_back(name);
    return it->second;
  }

  Json terms_to_json(const smt::proof::NamedTerms& terms) {
    Json::Array out;
    out.reserve(terms.size() * 2);
    for (const auto& [name, coeff] : terms) {
      out.push_back(name_id(name));
      out.push_back(coeff.to_string());
    }
    return Json(std::move(out));
  }

  std::int64_t premise_id(const Premise& premise) {
    Json::Array out;
    switch (premise.origin) {
      case PremiseOrigin::kConstraint:
        out.push_back("c");
        break;
      case PremiseOrigin::kAtom:
        out.push_back("a");
        out.push_back(static_cast<std::int64_t>(premise.atom));
        out.push_back(static_cast<std::int64_t>(premise.positive ? 1 : 0));
        break;
      case PremiseOrigin::kBranch:
        out.push_back("b");
        break;
    }
    out.push_back(terms_to_json(premise.terms));
    out.push_back(relation_to_string(premise.rel));
    out.push_back(premise.bound.to_string());
    Json json(std::move(out));
    const auto [it, inserted] =
        premise_ids_.emplace(json.to_string(), static_cast<std::int64_t>(premises_.size()));
    if (inserted) premises_.push_back(std::move(json));
    return it->second;
  }

  Json names_json() && {
    Json::Array out;
    out.reserve(names_.size());
    for (std::string& name : names_) out.push_back(std::move(name));
    return Json(std::move(out));
  }
  Json premises_json() && { return Json(std::move(premises_)); }
  bool empty() const { return names_.empty() && premises_.empty(); }

 private:
  std::vector<std::string> names_;
  std::map<std::string, std::int64_t> name_ids_;
  Json::Array premises_;
  std::map<std::string, std::int64_t> premise_ids_;
};

class ReadPool {
 public:
  ReadPool(const Json* names, const Json* premises) {
    if (names != nullptr) {
      for (const Json& name : names->as_array()) names_.push_back(name.as_string());
    }
    if (premises != nullptr) {
      for (const Json& premise : premises->as_array()) {
        premises_.push_back(premise_from_json(premise));
      }
    }
  }

  const std::string& name(std::int64_t id) const {
    if (id < 0 || id >= static_cast<std::int64_t>(names_.size())) {
      throw InvalidArgument("certificate: name index out of range");
    }
    return names_[static_cast<std::size_t>(id)];
  }

  const Premise& premise(std::int64_t id) const {
    if (id < 0 || id >= static_cast<std::int64_t>(premises_.size())) {
      throw InvalidArgument("certificate: premise index out of range");
    }
    return premises_[static_cast<std::size_t>(id)];
  }

  smt::proof::NamedTerms terms_from_json(const Json& json) const {
    const Json::Array& items = json.as_array();
    if (items.size() % 2 != 0) {
      throw InvalidArgument("certificate: terms must be [nameIdx, coeff] pairs");
    }
    smt::proof::NamedTerms terms;
    terms.reserve(items.size() / 2);
    for (std::size_t i = 0; i < items.size(); i += 2) {
      terms.emplace_back(name(items[i].as_int()),
                         BigInt::from_string(items[i + 1].as_string()));
    }
    return terms;
  }

 private:
  Premise premise_from_json(const Json& json) const {
    const Json::Array& items = json.as_array();
    if (items.empty()) throw InvalidArgument("certificate: empty premise");
    Premise premise;
    const std::string& origin = items[0].as_string();
    std::size_t next = 1;
    if (origin == "c") {
      premise.origin = PremiseOrigin::kConstraint;
    } else if (origin == "a") {
      premise.origin = PremiseOrigin::kAtom;
      if (items.size() < 3) throw InvalidArgument("certificate: truncated atom premise");
      premise.atom = static_cast<int>(items[1].as_int());
      premise.positive = items[2].as_int() != 0;
      next = 3;
    } else if (origin == "b") {
      premise.origin = PremiseOrigin::kBranch;
    } else {
      throw InvalidArgument("certificate: invalid premise origin '" + origin + "'");
    }
    if (items.size() != next + 3) throw InvalidArgument("certificate: malformed premise");
    premise.terms = terms_from_json(items[next]);
    premise.rel = relation_from_string(items[next + 1].as_string());
    premise.bound = BigInt::from_string(items[next + 2].as_string());
    return premise;
  }

  std::vector<std::string> names_;
  std::vector<Premise> premises_;
};

Json rational_to_json(const Rational& value) {
  if (value.is_integer()) return Json(value.numerator().to_string());
  return Json(value.numerator().to_string() + "/" + value.denominator().to_string());
}

Rational rational_from_json(const Json& json) {
  const std::string& text = json.as_string();
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) return Rational(BigInt::from_string(text));
  return Rational(BigInt::from_string(text.substr(0, slash)),
                  BigInt::from_string(text.substr(slash + 1)));
}

Json node_to_json(const Node& node, WritePool& pool) {
  Json::Array out;
  switch (node.kind) {
    case NodeKind::kFarkas: {
      out.reserve(1 + node.farkas.size() * 2);
      out.push_back("F");
      for (const auto& [premise, multiplier] : node.farkas) {
        out.push_back(pool.premise_id(premise));
        out.push_back(rational_to_json(multiplier));
      }
      return Json(std::move(out));
    }
    case NodeKind::kClauseConflict:
      out.push_back("C");
      out.push_back(static_cast<std::int64_t>(node.clause));
      return Json(std::move(out));
    case NodeKind::kPropagation:
      out.push_back("P");
      out.push_back(static_cast<std::int64_t>(node.clause));
      out.push_back(static_cast<std::int64_t>(node.atom));
      out.push_back(static_cast<std::int64_t>(node.positive ? 1 : 0));
      out.push_back(node_to_json(*node.first, pool));
      return Json(std::move(out));
    case NodeKind::kDecision:
      out.push_back("D");
      out.push_back(static_cast<std::int64_t>(node.atom));
      out.push_back(node_to_json(*node.first, pool));
      out.push_back(node_to_json(*node.second, pool));
      return Json(std::move(out));
    case NodeKind::kBranch:
      out.push_back("B");
      out.push_back(pool.terms_to_json(node.branch_terms));
      out.push_back(node.branch_bound.to_string());
      out.push_back(node_to_json(*node.first, pool));
      out.push_back(node_to_json(*node.second, pool));
      return Json(std::move(out));
  }
  throw InternalError("unreachable proof node kind");
}

std::unique_ptr<Node> node_from_json(const Json& json, const ReadPool& pool, int depth) {
  if (depth > kMaxProofDepth) throw InvalidArgument("certificate: proof tree too deep");
  const Json::Array& items = json.as_array();
  if (items.empty()) throw InvalidArgument("certificate: empty proof node");
  auto node = std::make_unique<Node>();
  const std::string& kind = items[0].as_string();
  if (kind == "F") {
    node->kind = NodeKind::kFarkas;
    if (items.size() % 2 != 1) {
      throw InvalidArgument("certificate: Farkas node must list [premiseIdx, mult] pairs");
    }
    node->farkas.reserve((items.size() - 1) / 2);
    for (std::size_t i = 1; i < items.size(); i += 2) {
      node->farkas.push_back(
          {pool.premise(items[i].as_int()), rational_from_json(items[i + 1])});
    }
    return node;
  }
  if (kind == "C") {
    if (items.size() != 2) throw InvalidArgument("certificate: malformed conflict node");
    node->kind = NodeKind::kClauseConflict;
    node->clause = static_cast<int>(items[1].as_int());
    return node;
  }
  if (kind == "P") {
    if (items.size() != 5) throw InvalidArgument("certificate: malformed propagation node");
    node->kind = NodeKind::kPropagation;
    node->clause = static_cast<int>(items[1].as_int());
    node->atom = static_cast<int>(items[2].as_int());
    node->positive = items[3].as_int() != 0;
    node->first = node_from_json(items[4], pool, depth + 1);
    return node;
  }
  if (kind == "D") {
    if (items.size() != 4) throw InvalidArgument("certificate: malformed decision node");
    node->kind = NodeKind::kDecision;
    node->atom = static_cast<int>(items[1].as_int());
    node->first = node_from_json(items[2], pool, depth + 1);
    node->second = node_from_json(items[3], pool, depth + 1);
    return node;
  }
  if (kind == "B") {
    if (items.size() != 5) throw InvalidArgument("certificate: malformed branch node");
    node->kind = NodeKind::kBranch;
    node->branch_terms = pool.terms_from_json(items[1]);
    node->branch_bound = BigInt::from_string(items[2].as_string());
    node->first = node_from_json(items[3], pool, depth + 1);
    node->second = node_from_json(items[4], pool, depth + 1);
    return node;
  }
  throw InvalidArgument("certificate: invalid proof node kind '" + kind + "'");
}

Json schema_to_json(std::int64_t query_index, const checker::Schema& schema) {
  Json out = Json(Json::Object{});
  out.set("query", query_index);
  Json::Array chain;
  chain.reserve(schema.unlock_order.size());
  for (const int guard : schema.unlock_order) chain.push_back(Json(static_cast<std::int64_t>(guard)));
  out.set("chain", Json(std::move(chain)));
  Json::Array cuts;
  cuts.reserve(schema.cut_positions.size());
  for (const int cut : schema.cut_positions) cuts.push_back(Json(static_cast<std::int64_t>(cut)));
  out.set("cuts", Json(std::move(cuts)));
  return out;
}

void schema_from_json(const Json& json, std::int64_t& query_index, checker::Schema& schema) {
  query_index = json.at("query").as_int();
  if (query_index < 0) throw InvalidArgument("certificate: negative query index");
  for (const Json& guard : json.at("chain").as_array()) {
    schema.unlock_order.push_back(static_cast<int>(guard.as_int()));
  }
  for (const Json& cut : json.at("cuts").as_array()) {
    schema.cut_positions.push_back(static_cast<int>(cut.as_int()));
  }
}

Json property_to_json(const PropertyCert& property) {
  Json out = Json(Json::Object{});
  out.set("name", property.name);
  Json source = Json(Json::Object{});
  source.set("kind", property.source.kind);
  if (!property.source.formula.empty()) source.set("formula", property.source.formula);
  out.set("source", std::move(source));
  out.set("verdict", property.verdict);
  if (!property.note.empty()) out.set("note", property.note);
  Json enumeration = Json(Json::Object{});
  enumeration.set("prune_implications", property.enumeration.prune_implications);
  enumeration.set("prune_dead_unlocks", property.enumeration.prune_dead_unlocks);
  enumeration.set("max_schemas", property.enumeration.max_schemas);
  out.set("enumeration", std::move(enumeration));
  out.set("property_directed_pruning", property.property_directed_pruning);
  out.set("complete", property.complete);
  WritePool pool;
  Json::Array schemas;
  schemas.reserve(property.schemas.size());
  for (const SchemaCert& entry : property.schemas) {
    Json item = schema_to_json(entry.query_index, entry.schema);
    item.set("sat", entry.sat);
    if (entry.sat) {
      Json model = Json(Json::Object{});
      for (const auto& [name, value] : entry.model) model.set(name, value.to_string());
      item.set("model", std::move(model));
    } else {
      if (entry.proof == nullptr) {
        throw InvalidArgument("certificate: unsat schema evidence without a proof");
      }
      item.set("proof", node_to_json(*entry.proof, pool));
    }
    schemas.push_back(std::move(item));
  }
  if (!pool.empty()) {
    out.set("names", std::move(pool).names_json());
    out.set("premises", std::move(pool).premises_json());
  }
  out.set("schemas", Json(std::move(schemas)));
  Json::Array pruned;
  pruned.reserve(property.pruned.size());
  for (const PrunedCert& entry : property.pruned) {
    pruned.push_back(schema_to_json(entry.query_index, entry.schema));
  }
  out.set("pruned", Json(std::move(pruned)));
  return out;
}

PropertyCert property_from_json(const Json& json) {
  PropertyCert property;
  property.name = json.at("name").as_string();
  const Json& source = json.at("source");
  property.source.kind = source.at("kind").as_string();
  if (const Json* formula = source.find("formula")) property.source.formula = formula->as_string();
  property.verdict = json.at("verdict").as_string();
  if (const Json* note = json.find("note")) property.note = note->as_string();
  const Json& enumeration = json.at("enumeration");
  property.enumeration.prune_implications = enumeration.at("prune_implications").as_bool();
  property.enumeration.prune_dead_unlocks = enumeration.at("prune_dead_unlocks").as_bool();
  property.enumeration.max_schemas = enumeration.at("max_schemas").as_int();
  property.property_directed_pruning = json.at("property_directed_pruning").as_bool();
  property.complete = json.at("complete").as_bool();
  const ReadPool pool(json.find("names"), json.find("premises"));
  for (const Json& item : json.at("schemas").as_array()) {
    SchemaCert entry;
    schema_from_json(item, entry.query_index, entry.schema);
    entry.sat = item.at("sat").as_bool();
    if (entry.sat) {
      for (const auto& [name, value] : item.at("model").as_object()) {
        entry.model.emplace_back(name, BigInt::from_string(value.as_string()));
      }
    } else {
      entry.proof = node_from_json(item.at("proof"), pool, 0);
    }
    property.schemas.push_back(std::move(entry));
  }
  for (const Json& item : json.at("pruned").as_array()) {
    PrunedCert entry;
    schema_from_json(item, entry.query_index, entry.schema);
    property.pruned.push_back(std::move(entry));
  }
  return property;
}

}  // namespace

Json proof_to_json(const smt::proof::Node& node) {
  WritePool pool;
  Json tree = node_to_json(node, pool);
  Json out = Json(Json::Object{});
  out.set("names", std::move(pool).names_json());
  out.set("premises", std::move(pool).premises_json());
  out.set("tree", std::move(tree));
  return out;
}

std::unique_ptr<smt::proof::Node> proof_from_json(const Json& json) {
  const ReadPool pool(json.find("names"), json.find("premises"));
  return node_from_json(json.at("tree"), pool, 0);
}

Json to_json(const Certificate& certificate) {
  Json out = Json(Json::Object{});
  out.set("format", "hv-cert");
  out.set("version", static_cast<std::int64_t>(certificate.version));
  Json::Array components;
  components.reserve(certificate.components.size());
  for (const ComponentCert& component : certificate.components) {
    Json item = Json(Json::Object{});
    Json model = Json(Json::Object{});
    model.set("kind", component.model.kind);
    if (component.model.kind == "text") {
      model.set("text", component.model.text);
    } else {
      model.set("key", component.model.key);
    }
    item.set("model", std::move(model));
    Json::Array properties;
    properties.reserve(component.properties.size());
    for (const PropertyCert& property : component.properties) {
      properties.push_back(property_to_json(property));
    }
    item.set("properties", Json(std::move(properties)));
    components.push_back(std::move(item));
  }
  out.set("components", Json(std::move(components)));
  if (certificate.theorem6) {
    Json theorem = Json(Json::Object{});
    theorem.set("agreement", certificate.theorem6->agreement);
    theorem.set("validity", certificate.theorem6->validity);
    theorem.set("termination", certificate.theorem6->termination);
    out.set("theorem6", std::move(theorem));
  }
  return out;
}

Certificate certificate_from_json(const Json& json) {
  if (json.at("format").as_string() != "hv-cert") {
    throw InvalidArgument("certificate: not an hv-cert file");
  }
  Certificate certificate;
  certificate.version = static_cast<int>(json.at("version").as_int());
  if (certificate.version != 1) {
    throw InvalidArgument("certificate: unsupported version " +
                          std::to_string(certificate.version));
  }
  for (const Json& item : json.at("components").as_array()) {
    ComponentCert component;
    const Json& model = item.at("model");
    component.model.kind = model.at("kind").as_string();
    if (component.model.kind == "text") {
      component.model.text = model.at("text").as_string();
    } else if (component.model.kind == "builtin") {
      component.model.key = model.at("key").as_string();
    } else {
      throw InvalidArgument("certificate: invalid model kind '" + component.model.kind + "'");
    }
    for (const Json& property : item.at("properties").as_array()) {
      component.properties.push_back(property_from_json(property));
    }
    certificate.components.push_back(std::move(component));
  }
  if (const Json* theorem = json.find("theorem6")) {
    Theorem6Claim claim;
    claim.agreement = theorem->at("agreement").as_string();
    claim.validity = theorem->at("validity").as_string();
    claim.termination = theorem->at("termination").as_string();
    certificate.theorem6 = std::move(claim);
  }
  return certificate;
}

std::string to_json_text(const Certificate& certificate) {
  // Compact on purpose: certificates carry hundreds of thousands of proof
  // tokens, and pretty-printing multiplies the file several-fold.
  return to_json(certificate).to_string();
}

Certificate parse_certificate(std::string_view json_text) {
  return certificate_from_json(Json::parse(json_text));
}

ta::ThresholdAutomaton builtin_model(const std::string& key) {
  if (key == "bv_broadcast") return models::bv_broadcast();
  if (key == "st_broadcast") return models::st_broadcast();
  if (key == "simplified_consensus") return models::simplified_consensus_one_round();
  if (key == "naive_consensus") return models::naive_consensus_one_round();
  throw InvalidArgument("certificate: unknown builtin model '" + key + "'");
}

namespace {

// The Table-2 rows of the two consensus automata; the broadcast automata
// default to their full bundled sets.
const char* const kSimplifiedTable2[] = {"Inv1_0", "Inv2_0", "SRoundTerm", "Good_0", "Dec_0"};

}  // namespace

bool has_bundled_properties(const std::string& automaton_name) {
  return automaton_name == "BvBroadcast" || automaton_name == "StBroadcast" ||
         automaton_name == "SimplifiedConsensus" || automaton_name == "NaiveConsensus";
}

std::vector<spec::Property> bundled_properties(const ta::ThresholdAutomaton& ta,
                                               bool table2_defaults) {
  const std::string& name = ta.name();
  if (name == "BvBroadcast") return models::bv_properties(ta);
  if (name == "StBroadcast") return models::st_properties(ta);
  if (name == "NaiveConsensus") return models::naive_table2_properties(ta);
  if (name == "SimplifiedConsensus") {
    std::vector<spec::Property> all = models::simplified_properties(ta);
    if (!table2_defaults) return all;
    std::vector<spec::Property> subset;
    for (const char* wanted : kSimplifiedTable2) {
      const auto it = std::find_if(all.begin(), all.end(), [&](const spec::Property& p) {
        return p.name == wanted;
      });
      if (it == all.end()) throw InternalError("bundled Table-2 property missing: " +
                                               std::string(wanted));
      subset.push_back(std::move(*it));
    }
    return subset;
  }
  throw InvalidArgument("certificate: no bundled properties for automaton '" + name + "'");
}

}  // namespace hv::cert
