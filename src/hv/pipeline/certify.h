// Theorem-6 certificate assembly: packages a holistic run's per-property
// evidence into one proof-carrying certificate whose theorem6 section
// restates the composed Agreement/Validity/Termination verdicts. The run
// must have been certifying (HolisticOptions::check.certify).
#ifndef HV_PIPELINE_CERTIFY_H
#define HV_PIPELINE_CERTIFY_H

#include "hv/cert/certificate.h"
#include "hv/pipeline/holistic.h"

namespace hv::pipeline {

/// Builds the composite certificate: one component per automaton the
/// pipeline actually checked (naive attempt when present, bv broadcast,
/// simplified consensus), all with builtin model sources, plus the
/// Theorem-6 claim. Throws InvalidArgument when the report carries no
/// evidence (i.e. the run was not certifying).
cert::Certificate certify_report(const HolisticReport& report);

}  // namespace hv::pipeline

#endif  // HV_PIPELINE_CERTIFY_H
