// The holistic verification pipeline of the paper, end to end:
//
//   1. model-check the binary value broadcast TA (Fig. 2) — all four
//      properties, both values (Section 3.2);
//   2. on success, the bv-broadcast gadget inside the simplified consensus
//      TA (Fig. 4) is justified, and its Appendix-F specification is
//      checked: Inv1/Inv2 (safety), Dec/Good/SRoundTerm (liveness
//      ingredients);
//   3. the verdicts compose into the consensus properties:
//        Agreement, Validity  <-  Inv1_v && Inv2_v        [10, Prop. 2]
//        Termination (under the fairness of Def. 3)
//                             <-  SRoundTerm && Dec_v && Good_v
//                                 (Theorem 6)
//
// The composition logic is ordinary code — exactly the glue proof of
// Theorem 6 — and is itself unit-tested.
#ifndef HV_PIPELINE_HOLISTIC_H
#define HV_PIPELINE_HOLISTIC_H

#include <string>
#include <vector>

#include "hv/checker/parameterized.h"
#include "hv/checker/result.h"

namespace hv::pipeline {

struct HolisticOptions {
  checker::CheckOptions check;
  /// Also attempt the naive composite automaton first (Table 2's negative
  /// result); bounded by naive_timeout_seconds.
  bool include_naive_attempt = false;
  double naive_timeout_seconds = 60.0;
  /// Crash-safe progress journaling (empty disables): each stage writes its
  /// own file — "<prefix>.naive.jsonl", "<prefix>.bv.jsonl",
  /// "<prefix>.consensus.jsonl" — because a journal is bound to one
  /// automaton.
  std::string journal_prefix;
  /// Resume from whatever the stage journals already settled (requires
  /// journal_prefix; stages whose file does not exist yet start fresh).
  bool resume = false;
};

struct HolisticReport {
  std::vector<checker::PropertyResult> bv_results;
  std::vector<checker::PropertyResult> consensus_results;
  std::vector<checker::PropertyResult> naive_results;  // when attempted

  checker::Verdict agreement = checker::Verdict::kUnknown;
  checker::Verdict validity = checker::Verdict::kUnknown;
  /// Termination under the fairness assumption of Definition 3.
  checker::Verdict termination = checker::Verdict::kUnknown;

  double total_seconds = 0.0;

  /// True iff every checked property of both automata holds.
  bool fully_verified() const;
  /// Multi-line human-readable account of the run.
  std::string to_string() const;
};

/// Runs the whole pipeline on the paper's models.
HolisticReport verify_red_belly_consensus(const HolisticOptions& options = {});

/// The composition step alone (exposed for tests): derives the consensus
/// verdicts from per-property results named as in the paper.
void compose_verdicts(HolisticReport& report);

}  // namespace hv::pipeline

#endif  // HV_PIPELINE_HOLISTIC_H
