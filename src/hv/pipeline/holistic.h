// The holistic verification pipeline of the paper, end to end:
//
//   1. model-check the binary value broadcast TA (Fig. 2) — all four
//      properties, both values (Section 3.2);
//   2. on success, the bv-broadcast gadget inside the simplified consensus
//      TA (Fig. 4) is justified, and its Appendix-F specification is
//      checked: Inv1/Inv2 (safety), Dec/Good/SRoundTerm (liveness
//      ingredients);
//   3. the verdicts compose into the consensus properties:
//        Agreement, Validity  <-  Inv1_v && Inv2_v        [10, Prop. 2]
//        Termination (under the fairness of Def. 3)
//                             <-  SRoundTerm && Dec_v && Good_v
//                                 (Theorem 6)
//
// The composition logic is ordinary code — exactly the glue proof of
// Theorem 6 — and is itself unit-tested.
//
// The property-queries inside each stage are logically independent, and the
// stages relate only through the gating edges above — so the pipeline is
// really a DAG, not a sequence. With dag_workers >= 1 it is scheduled as
// one (hv/pipeline/dag): every property becomes its own node with its own
// journal, ready nodes run concurrently, a refuted bv property cancels the
// whole consensus stage without starting it, and the composition step is an
// ordering-only node that reports whatever verdicts survived.
#ifndef HV_PIPELINE_HOLISTIC_H
#define HV_PIPELINE_HOLISTIC_H

#include <functional>
#include <string>
#include <vector>

#include "hv/checker/parameterized.h"
#include "hv/checker/result.h"

namespace hv::pipeline {

struct HolisticOptions {
  checker::CheckOptions check;
  /// Also attempt the naive composite automaton first (Table 2's negative
  /// result); bounded by naive_timeout_seconds. The budget *tightens* the
  /// shared CheckOptions deadline (it never loosens an outer --timeout), so
  /// it flows through the schema solver's own watchdog/retry path and
  /// composes with DAG cancellation instead of stacking a second watchdog.
  bool include_naive_attempt = false;
  double naive_timeout_seconds = 60.0;
  /// Crash-safe progress journaling (empty disables). The sequential
  /// pipeline writes one file per stage — "<prefix>.naive.jsonl",
  /// "<prefix>.bv.jsonl", "<prefix>.consensus.jsonl" — because a journal is
  /// bound to one automaton. A DAG run (dag_workers >= 1) journals per
  /// *node* instead: "<prefix>.<stage>.<property>.jsonl", each header
  /// stamped with the node identity so files cannot be cross-resumed.
  std::string journal_prefix;
  /// Resume from whatever the stage (or node) journals already settled
  /// (requires journal_prefix; files that do not exist yet start fresh).
  bool resume = false;
  /// DAG scheduling: >= 1 runs the property DAG on that many concurrent
  /// lanes (1 lane executes the exact sequential order, with per-node
  /// journals). 0 keeps the classic sequential per-stage pipeline.
  int dag_workers = 0;
  /// DAG progress sink: one line per node start/settle, with aggregate
  /// counts and a whole-DAG ETA. May be called from any scheduler lane
  /// (serialized by the scheduler lock); null disables.
  std::function<void(const std::string& line)> on_progress;
};

struct HolisticReport {
  std::vector<checker::PropertyResult> bv_results;
  std::vector<checker::PropertyResult> consensus_results;
  std::vector<checker::PropertyResult> naive_results;  // when attempted

  checker::Verdict agreement = checker::Verdict::kUnknown;
  checker::Verdict validity = checker::Verdict::kUnknown;
  /// Termination under the fairness assumption of Definition 3.
  checker::Verdict termination = checker::Verdict::kUnknown;

  /// End-to-end wall-clock of the run.
  double total_seconds = 0.0;
  /// Sum of per-property solve times. Equal to wall-clock (minus glue) for
  /// a sequential run; a concurrent DAG run's wall-clock under-reports the
  /// work actually spent, so both are reported.
  double cpu_seconds = 0.0;
  /// Lanes the DAG was scheduled on; 0 for the sequential pipeline.
  int dag_lanes = 0;
  /// DAG nodes cancelled before running (an upstream property failed, or
  /// the run was interrupted).
  int nodes_cancelled = 0;

  /// True iff every checked property of both automata holds.
  bool fully_verified() const;
  /// Multi-line human-readable account of the run.
  std::string to_string() const;
};

/// Runs the whole pipeline on the paper's models.
HolisticReport verify_red_belly_consensus(const HolisticOptions& options = {});

/// The composition step alone (exposed for tests): derives the consensus
/// verdicts from per-property results named as in the paper. Pure in the
/// order-insensitive sense: verdicts depend only on the *set* of results,
/// never on the completion order that produced them.
void compose_verdicts(HolisticReport& report);

}  // namespace hv::pipeline

#endif  // HV_PIPELINE_HOLISTIC_H
