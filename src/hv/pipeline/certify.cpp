#include "hv/pipeline/certify.h"

#include "hv/cert/emit.h"
#include "hv/models/bv_broadcast.h"
#include "hv/models/naive_consensus.h"
#include "hv/models/simplified_consensus.h"

namespace hv::pipeline {

cert::Certificate certify_report(const HolisticReport& report) {
  cert::Certificate certificate;

  if (!report.naive_results.empty()) {
    const ta::ThresholdAutomaton naive = models::naive_consensus_one_round();
    certificate.components.push_back(cert::make_component_cert(
        cert::builtin_model_source("naive_consensus"), models::naive_table2_properties(naive),
        report.naive_results, "bundled"));
  }
  if (!report.bv_results.empty()) {
    const ta::ThresholdAutomaton bv = models::bv_broadcast();
    certificate.components.push_back(
        cert::make_component_cert(cert::builtin_model_source("bv_broadcast"),
                                  models::bv_properties(bv), report.bv_results, "bundled"));
  }
  if (!report.consensus_results.empty()) {
    const ta::ThresholdAutomaton consensus = models::simplified_consensus_one_round();
    certificate.components.push_back(cert::make_component_cert(
        cert::builtin_model_source("simplified_consensus"),
        models::simplified_properties(consensus), report.consensus_results, "bundled"));
  }

  cert::Theorem6Claim claim;
  claim.agreement = checker::to_string(report.agreement);
  claim.validity = checker::to_string(report.validity);
  claim.termination = checker::to_string(report.termination);
  certificate.theorem6 = std::move(claim);
  return certificate;
}

}  // namespace hv::pipeline
