// The pipeline's dependency DAG: every schedulable unit of the holistic
// method is a node — a property-query (one automaton, one property, one
// options fingerprint) or a composition step — and every edge is a real
// dependency of the paper:
//
//   * the bv-broadcast property nodes gate the justification of the
//     gadget inside the simplified consensus TA, so every consensus node
//     depends on all of them;
//   * the consensus nodes (Inv1/Inv2/Dec/Good/SRoundTerm, both values)
//     gate the Theorem-6 recomposition node;
//   * the naive composite attempt is a free-floating node: nothing
//     depends on it, it depends on nothing.
//
// Dependencies come in two strengths. A *gating* dependency propagates
// failure: when it fails (or is itself cancelled), the dependent is
// cancelled without running — this is how a refuted bv property cancels
// the whole consensus stage early. An *ordering-only* dependency merely
// sequences: the dependent waits for the dependency to settle but runs
// whatever the outcome — this is the composition step, which must report
// verdicts (unknown included) even for a partially failed pipeline.
//
// The same graph shape carries the sharded certificate audit: component
// nodes (model reconstruction) gate per-property shard nodes, which gate
// the per-property coverage walk.
#ifndef HV_PIPELINE_DAG_GRAPH_H
#define HV_PIPELINE_DAG_GRAPH_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace hv::pipeline::dag {

using NodeId = int;

enum class NodeStatus {
  kPending,    // not dispatched yet
  kRunning,    // a lane is executing run()
  kDone,       // run() returned true
  kFailed,     // run() returned false (or threw)
  kCancelled,  // never ran: a gating dependency failed, or the run aborted
};

std::string to_string(NodeStatus status);

struct Node {
  /// Stable identity: "<stage>.<property>#<options-fingerprint-hash>" for
  /// property-query nodes. Unique within a graph; journal headers record it
  /// so a per-node journal is never resumed into a different node.
  std::string key;
  /// The work item; returns success. A false return (or a thrown hv::Error)
  /// fails the node and cancels every gated transitive dependent.
  std::function<bool()> run;
  /// Nodes that must settle before this one is dispatched. Must reference
  /// already-added nodes, so a Graph is acyclic by construction.
  std::vector<NodeId> deps;
  /// Gating (true): cancelled when any dependency does not finish kDone.
  /// Ordering-only (false): waits for its deps but runs regardless.
  bool gated = true;

  // Filled in by the scheduler.
  NodeStatus status = NodeStatus::kPending;
  /// Wall-clock spent inside run(); the node's contribution to the DAG's
  /// aggregate CPU seconds.
  double seconds = 0.0;
};

struct RunOptions;
struct RunStats;

/// Append-only node container. Throws hv::InvalidArgument on a duplicate
/// key, an empty key, a missing run callable or an out-of-range dependency.
class Graph {
 public:
  NodeId add(Node node);
  NodeId add(std::string key, std::function<bool()> run, std::vector<NodeId> deps = {},
             bool gated = true);

  const Node& node(NodeId id) const;
  std::size_t size() const noexcept { return nodes_.size(); }
  const std::vector<Node>& nodes() const noexcept { return nodes_; }

 private:
  friend RunStats run(Graph& graph, const RunOptions& options);

  std::vector<Node> nodes_;
};

}  // namespace hv::pipeline::dag

#endif  // HV_PIPELINE_DAG_GRAPH_H
