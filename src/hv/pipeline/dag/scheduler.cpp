#include "hv/pipeline/dag/scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "hv/util/stopwatch.h"

namespace hv::pipeline::dag {

namespace {

/// All mutable scheduling state, guarded by one mutex: node statuses live
/// in the graph itself; everything else is the bookkeeping to decide what
/// is ready.
struct SchedState {
  std::mutex mutex;
  std::condition_variable work;
  /// Ready nodes ordered by id — deterministic dispatch, and insertion
  /// order on one lane.
  std::set<NodeId> ready;
  /// Unsatisfied dependency counts; a node enters `ready` (or is cancelled)
  /// when its count reaches zero.
  std::vector<int> pending_deps;
  /// Dependents adjacency (forward edges), built once from Node::deps.
  std::vector<std::vector<NodeId>> dependents;
  /// A gated node is poisoned when any dependency settled != kDone; it is
  /// cancelled instead of dispatched once its deps are all settled.
  std::vector<bool> poisoned;
  int unsettled = 0;
  int running = 0;
  bool aborted = false;  // external cancel observed
};

}  // namespace

RunStats run(Graph& graph, const RunOptions& options) {
  const Stopwatch stopwatch;
  RunStats stats;
  std::vector<Node>& nodes = graph.nodes_;
  const int total = static_cast<int>(nodes.size());
  if (total == 0) return stats;
  const int lanes = std::max(1, std::min(options.lanes, total));

  SchedState state;
  state.pending_deps.resize(nodes.size(), 0);
  state.dependents.resize(nodes.size());
  state.poisoned.resize(nodes.size(), false);
  state.unsettled = total;
  for (NodeId id = 0; id < total; ++id) {
    const Node& node = nodes[static_cast<std::size_t>(id)];
    state.pending_deps[static_cast<std::size_t>(id)] = static_cast<int>(node.deps.size());
    for (const NodeId dep : node.deps) {
      state.dependents[static_cast<std::size_t>(dep)].push_back(id);
    }
    if (node.deps.empty()) state.ready.insert(id);
  }

  const auto progress_snapshot = [&]() {
    Progress p;
    p.total = total;
    p.settled = total - state.unsettled;
    p.running = state.running;
    p.failed = stats.nodes_failed;
    p.cancelled = stats.nodes_cancelled;
    p.elapsed_seconds = stopwatch.seconds();
    if (p.settled > 0 && p.settled < total) {
      p.eta_seconds = p.elapsed_seconds / p.settled * (total - p.settled);
    } else if (p.settled == total) {
      p.eta_seconds = 0.0;
    }
    return p;
  };

  const auto observe = [&](Event event, NodeId id) {
    if (options.observer) {
      options.observer(event, nodes[static_cast<std::size_t>(id)], progress_snapshot());
    }
  };

  // Settles one node (caller holds the lock) and walks the consequences:
  // dependents' counts drop, gated dependents of a non-done node are
  // poisoned, and fully-satisfied poisoned nodes cascade into cancellation
  // without ever being dispatched.
  const auto settle = [&](NodeId first, NodeStatus first_status) {
    std::deque<std::pair<NodeId, NodeStatus>> queue{{first, first_status}};
    while (!queue.empty()) {
      const auto [id, status] = queue.front();
      queue.pop_front();
      Node& node = nodes[static_cast<std::size_t>(id)];
      node.status = status;
      --state.unsettled;
      if (status == NodeStatus::kDone) {
        ++stats.nodes_done;
      } else if (status == NodeStatus::kFailed) {
        ++stats.nodes_failed;
      } else {
        ++stats.nodes_cancelled;
      }
      for (const NodeId dep_id : state.dependents[static_cast<std::size_t>(id)]) {
        Node& dependent = nodes[static_cast<std::size_t>(dep_id)];
        if (status != NodeStatus::kDone && dependent.gated) {
          state.poisoned[static_cast<std::size_t>(dep_id)] = true;
        }
        if (--state.pending_deps[static_cast<std::size_t>(dep_id)] > 0) continue;
        if (state.poisoned[static_cast<std::size_t>(dep_id)]) {
          queue.emplace_back(dep_id, NodeStatus::kCancelled);
        } else {
          state.ready.insert(dep_id);
        }
      }
      observe(Event::kSettle, id);
    }
  };

  const auto externally_cancelled = [&] {
    return options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed);
  };

  const auto lane = [&] {
    std::unique_lock<std::mutex> lock(state.mutex);
    while (true) {
      state.work.wait(lock, [&] {
        return !state.ready.empty() || state.unsettled == 0 || state.aborted;
      });
      if (state.aborted || state.unsettled == 0) return;
      if (externally_cancelled()) {
        state.aborted = true;
        stats.interrupted = true;
        state.work.notify_all();
        return;
      }
      const NodeId id = *state.ready.begin();
      state.ready.erase(state.ready.begin());
      Node& node = nodes[static_cast<std::size_t>(id)];
      node.status = NodeStatus::kRunning;
      ++state.running;
      observe(Event::kStart, id);
      lock.unlock();

      const Stopwatch node_watch;
      bool ok = false;
      try {
        ok = node.run();
      } catch (...) {
        ok = false;
      }
      const double seconds = node_watch.seconds();

      lock.lock();
      node.seconds = seconds;
      stats.cpu_seconds += seconds;
      --state.running;
      settle(id, ok ? NodeStatus::kDone : NodeStatus::kFailed);
      state.work.notify_all();
    }
  };

  if (lanes == 1) {
    lane();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(lanes));
    for (int i = 0; i < lanes; ++i) threads.emplace_back(lane);
    for (std::thread& thread : threads) thread.join();
  }

  // An aborted run leaves pending nodes behind; they settle as cancelled so
  // every node has a final status and observers see a complete event log.
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    for (NodeId id = 0; id < total; ++id) {
      if (nodes[static_cast<std::size_t>(id)].status == NodeStatus::kPending) {
        Node& node = nodes[static_cast<std::size_t>(id)];
        node.status = NodeStatus::kCancelled;
        --state.unsettled;
        ++stats.nodes_cancelled;
        observe(Event::kSettle, id);
      }
    }
    // A cancel that lands while the last running nodes wind down may empty
    // the DAG through the settle cascade before any lane re-checks the
    // flag; a run that cancelled nodes under an armed flag was interrupted.
    if (externally_cancelled() && stats.nodes_cancelled > 0) stats.interrupted = true;
  }

  stats.wall_seconds = stopwatch.seconds();
  return stats;
}

}  // namespace hv::pipeline::dag
