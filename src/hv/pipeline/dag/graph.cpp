#include "hv/pipeline/dag/graph.h"

#include <unordered_set>
#include <utility>

#include "hv/util/error.h"

namespace hv::pipeline::dag {

std::string to_string(NodeStatus status) {
  switch (status) {
    case NodeStatus::kPending:
      return "pending";
    case NodeStatus::kRunning:
      return "running";
    case NodeStatus::kDone:
      return "done";
    case NodeStatus::kFailed:
      return "failed";
    case NodeStatus::kCancelled:
      return "cancelled";
  }
  return "invalid";
}

NodeId Graph::add(Node node) {
  if (node.key.empty()) throw InvalidArgument("dag: node key must not be empty");
  if (node.run == nullptr) throw InvalidArgument("dag: node '" + node.key + "' has no work");
  for (const Node& existing : nodes_) {
    if (existing.key == node.key) {
      throw InvalidArgument("dag: duplicate node key '" + node.key + "'");
    }
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  std::unordered_set<NodeId> seen;
  for (const NodeId dep : node.deps) {
    if (dep < 0 || dep >= id) {
      throw InvalidArgument("dag: node '" + node.key + "' depends on #" + std::to_string(dep) +
                            ", which is not an earlier node");
    }
    if (!seen.insert(dep).second) {
      throw InvalidArgument("dag: node '" + node.key + "' lists dependency #" +
                            std::to_string(dep) + " twice");
    }
  }
  node.status = NodeStatus::kPending;
  node.seconds = 0.0;
  nodes_.push_back(std::move(node));
  return id;
}

NodeId Graph::add(std::string key, std::function<bool()> run, std::vector<NodeId> deps,
                  bool gated) {
  Node node;
  node.key = std::move(key);
  node.run = std::move(run);
  node.deps = std::move(deps);
  node.gated = gated;
  return add(std::move(node));
}

const Node& Graph::node(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) {
    throw InvalidArgument("dag: invalid node id #" + std::to_string(id));
  }
  return nodes_[static_cast<std::size_t>(id)];
}

}  // namespace hv::pipeline::dag
