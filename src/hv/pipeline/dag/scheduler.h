// Runs a dag::Graph on a fixed number of concurrent lanes.
//
// Dispatch is deterministic: among ready nodes the lowest NodeId goes
// first, so a single-lane run executes nodes exactly in insertion order —
// the sequential pipeline is the lanes=1 special case of the scheduler,
// not a separate code path to keep in sync.
//
// Cancellation has two sources and one meaning. A *failed* node (run()
// returned false or threw) cancels its gated transitive dependents without
// running them; an *external* cancel flag (SIGINT/SIGTERM) stops dispatch
// and cancels everything still pending. Running nodes are never killed —
// they are expected to watch the same flag through their own options (the
// checker's CheckOptions::cancel), so both layers of cancellation compose
// through one mechanism.
#ifndef HV_PIPELINE_DAG_SCHEDULER_H
#define HV_PIPELINE_DAG_SCHEDULER_H

#include <atomic>
#include <functional>

#include "hv/pipeline/dag/graph.h"

namespace hv::pipeline::dag {

/// Aggregate view of an in-flight run, recomputed for every observer call.
struct Progress {
  int total = 0;
  int settled = 0;  // done + failed + cancelled
  int running = 0;
  int failed = 0;
  int cancelled = 0;
  double elapsed_seconds = 0.0;
  /// Whole-DAG estimate: elapsed / settled * unsettled. Negative until the
  /// first node settles (no basis for an estimate yet).
  double eta_seconds = -1.0;
};

enum class Event {
  kStart,   // a lane picked the node up
  kSettle,  // the node reached kDone / kFailed / kCancelled
};

struct RunOptions {
  /// Concurrent lanes (worker threads); clamped to >= 1.
  int lanes = 1;
  /// External cancellation; may be null. Checked at every dispatch point.
  const std::atomic<bool>* cancel = nullptr;
  /// Node lifecycle observer; may be null. Called under the scheduler lock
  /// (events are totally ordered and Progress is consistent), possibly from
  /// several lanes — it must be quick and must not re-enter the scheduler.
  std::function<void(Event event, const Node& node, const Progress& progress)> observer;
};

struct RunStats {
  /// End-to-end wall-clock of the run.
  double wall_seconds = 0.0;
  /// Sum of per-node run() times — the work a concurrent run's wall-clock
  /// under-reports.
  double cpu_seconds = 0.0;
  int nodes_done = 0;
  int nodes_failed = 0;
  int nodes_cancelled = 0;
  /// True iff the external cancel flag stopped dispatch.
  bool interrupted = false;
};

/// Executes every node of `graph` (statuses and timings are written back
/// into the nodes) and returns the aggregate accounting. Reentrant per
/// graph: a graph is meant to be run once.
RunStats run(Graph& graph, const RunOptions& options = {});

}  // namespace hv::pipeline::dag

#endif  // HV_PIPELINE_DAG_SCHEDULER_H
