#include "hv/pipeline/holistic.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "hv/models/bv_broadcast.h"
#include "hv/models/naive_consensus.h"
#include "hv/models/simplified_consensus.h"
#include "hv/util/stopwatch.h"

namespace hv::pipeline {

namespace {

using checker::PropertyResult;
using checker::Verdict;

// Combines dependencies: all hold -> holds; any violated -> violated;
// otherwise unknown.
Verdict combine(const std::vector<const PropertyResult*>& dependencies) {
  bool all_hold = true;
  for (const PropertyResult* result : dependencies) {
    if (result == nullptr) return Verdict::kUnknown;
    if (result->verdict == Verdict::kViolated) return Verdict::kViolated;
    if (result->verdict != Verdict::kHolds) all_hold = false;
  }
  return all_hold ? Verdict::kHolds : Verdict::kUnknown;
}

const PropertyResult* find(const std::vector<PropertyResult>& results, const char* name) {
  const auto it = std::find_if(results.begin(), results.end(),
                               [name](const PropertyResult& r) { return r.property == name; });
  return it == results.end() ? nullptr : &*it;
}

// Per-stage checker options: each stage checks a different automaton, so it
// journals (and resumes) its own "<prefix>.<stage>.jsonl" file.
checker::CheckOptions stage_options(const HolisticOptions& options, const char* stage) {
  checker::CheckOptions check = options.check;
  if (options.journal_prefix.empty()) return check;
  const std::string path = options.journal_prefix + "." + stage + ".jsonl";
  check.journal_path = path;
  if (options.resume && std::ifstream(path).good()) check.resume_path = path;
  return check;
}

bool any_interrupted(const std::vector<PropertyResult>& results) {
  return std::any_of(results.begin(), results.end(),
                     [](const PropertyResult& r) { return r.interrupted; });
}

}  // namespace

bool HolisticReport::fully_verified() const {
  const auto all_hold = [](const std::vector<PropertyResult>& results) {
    return std::all_of(results.begin(), results.end(), [](const PropertyResult& r) {
      return r.verdict == Verdict::kHolds;
    });
  };
  return !bv_results.empty() && !consensus_results.empty() && all_hold(bv_results) &&
         all_hold(consensus_results);
}

void compose_verdicts(HolisticReport& report) {
  // The gadget inside the simplified TA is justified only if every
  // bv-broadcast property holds; its verdicts gate everything downstream.
  std::vector<const PropertyResult*> gadget;
  for (const PropertyResult& result : report.bv_results) gadget.push_back(&result);

  const auto with_gadget = [&gadget](std::vector<const PropertyResult*> own) {
    own.insert(own.end(), gadget.begin(), gadget.end());
    return own;
  };

  // [10, Proposition 2]: Inv1_v and Inv2_v imply Agree_v and Valid_v.
  report.agreement = combine(with_gadget({find(report.consensus_results, "Inv1_0"),
                                          find(report.consensus_results, "Inv1_1"),
                                          find(report.consensus_results, "Inv2_0"),
                                          find(report.consensus_results, "Inv2_1")}));
  report.validity = combine(with_gadget({find(report.consensus_results, "Inv2_0"),
                                         find(report.consensus_results, "Inv2_1")}));
  // Theorem 6: fairness (Def. 3) gives a good round; Corollary 5 turns it
  // into an empty M0 (or M1x) superround; (Good) and (Dec) then force every
  // process to decide, and (SRoundTerm) makes the termination formula
  // well-formed.
  report.termination = combine(with_gadget({find(report.consensus_results, "SRoundTerm"),
                                            find(report.consensus_results, "Dec_0"),
                                            find(report.consensus_results, "Dec_1"),
                                            find(report.consensus_results, "Good_0"),
                                            find(report.consensus_results, "Good_1")}));
}

HolisticReport verify_red_belly_consensus(const HolisticOptions& options) {
  const Stopwatch stopwatch;
  HolisticReport report;

  if (options.include_naive_attempt) {
    const ta::ThresholdAutomaton naive = models::naive_consensus_one_round();
    checker::CheckOptions naive_options = stage_options(options, "naive");
    naive_options.timeout_seconds = options.naive_timeout_seconds;
    report.naive_results =
        checker::check_properties(naive, models::naive_table2_properties(naive), naive_options);
  }

  const ta::ThresholdAutomaton bv = models::bv_broadcast();
  report.bv_results = checker::check_properties(bv, models::bv_properties(bv),
                                                stage_options(options, "bv"));

  const bool gadget_justified =
      std::all_of(report.bv_results.begin(), report.bv_results.end(),
                  [](const PropertyResult& r) { return r.verdict == Verdict::kHolds; });
  // An interrupted stage already flushed its journal; don't start the next.
  if (gadget_justified && !any_interrupted(report.naive_results) &&
      !any_interrupted(report.bv_results)) {
    const ta::ThresholdAutomaton consensus = models::simplified_consensus_one_round();
    report.consensus_results = checker::check_properties(
        consensus, models::simplified_properties(consensus), stage_options(options, "consensus"));
  }

  compose_verdicts(report);
  report.total_seconds = stopwatch.seconds();
  return report;
}

std::string HolisticReport::to_string() const {
  std::ostringstream os;
  const auto section = [&os](const char* title, const std::vector<PropertyResult>& results) {
    if (results.empty()) return;
    os << title << "\n";
    for (const PropertyResult& result : results) {
      os << "  " << result.property << ": " << checker::to_string(result.verdict) << " ("
         << result.schemas_checked << " schemas, " << result.seconds << "s)";
      if (!result.note.empty()) os << " [" << result.note << "]";
      os << "\n";
    }
  };
  section("naive composite automaton (expected to exhaust its budget):", naive_results);
  section("binary value broadcast (Fig. 2):", bv_results);
  section("simplified consensus (Fig. 4, Appendix F):", consensus_results);
  os << "composed verdicts:\n";
  os << "  Agreement:  " << checker::to_string(agreement) << "\n";
  os << "  Validity:   " << checker::to_string(validity) << "\n";
  os << "  Termination (under Definition 3 fairness): " << checker::to_string(termination)
     << "\n";
  os << "total time: " << total_seconds << "s\n";
  return os.str();
}

}  // namespace hv::pipeline
