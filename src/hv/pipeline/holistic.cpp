#include "hv/pipeline/holistic.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "hv/models/bv_broadcast.h"
#include "hv/models/naive_consensus.h"
#include "hv/models/simplified_consensus.h"
#include "hv/pipeline/dag/scheduler.h"
#include "hv/util/stopwatch.h"

namespace hv::pipeline {

namespace {

using checker::PropertyResult;
using checker::Verdict;

// Combines dependencies: all hold -> holds; any violated -> violated;
// otherwise unknown.
Verdict combine(const std::vector<const PropertyResult*>& dependencies) {
  bool all_hold = true;
  for (const PropertyResult* result : dependencies) {
    if (result == nullptr) return Verdict::kUnknown;
    if (result->verdict == Verdict::kViolated) return Verdict::kViolated;
    if (result->verdict != Verdict::kHolds) all_hold = false;
  }
  return all_hold ? Verdict::kHolds : Verdict::kUnknown;
}

const PropertyResult* find(const std::vector<PropertyResult>& results, const char* name) {
  const auto it = std::find_if(results.begin(), results.end(),
                               [name](const PropertyResult& r) { return r.property == name; });
  return it == results.end() ? nullptr : &*it;
}

// Per-stage checker options: each stage checks a different automaton, so it
// journals (and resumes) its own "<prefix>.<stage>.jsonl" file.
checker::CheckOptions stage_options(const HolisticOptions& options, const char* stage) {
  checker::CheckOptions check = options.check;
  if (options.journal_prefix.empty()) return check;
  const std::string path = options.journal_prefix + "." + stage + ".jsonl";
  check.journal_path = path;
  if (options.resume && std::ifstream(path).good()) check.resume_path = path;
  return check;
}

// The naive attempt's budget used to replace the run timeout wholesale — a
// second watchdog layered over the one the schema solver's retry ladder
// already owns. Instead it *tightens* the shared CheckOptions deadline:
// the tightened timeout flows through check_property's single
// deadline/cancellation path (per-schema remaining-time clamps, watchdog
// degradation, the cancel flag), so an outer --timeout, DAG cancellation
// and this budget compose through one mechanism.
void apply_naive_budget(checker::CheckOptions& check, double budget_seconds) {
  if (budget_seconds <= 0.0) return;
  if (check.timeout_seconds <= 0.0 || budget_seconds < check.timeout_seconds) {
    check.timeout_seconds = budget_seconds;
  }
}

bool any_interrupted(const std::vector<PropertyResult>& results) {
  return std::any_of(results.begin(), results.end(),
                     [](const PropertyResult& r) { return r.interrupted; });
}

double sum_seconds(const HolisticReport& report) {
  double total = 0.0;
  for (const auto* results :
       {&report.naive_results, &report.bv_results, &report.consensus_results}) {
    for (const PropertyResult& result : *results) total += result.seconds;
  }
  return total;
}

// ---------------------------------------------------------------------------
// DAG scheduling (dag_workers >= 1).
// ---------------------------------------------------------------------------

/// 16-hex-digit FNV-1a of the options fingerprint: the node identity stays
/// readable in journal headers while still pinning every verdict-relevant
/// option.
std::string fingerprint_hash(const checker::CheckOptions& check) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : checker::options_fingerprint(check)) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(hash));
  return buffer;
}

/// Node identity: stage, property and the fingerprint of every option that
/// can change what the node computes. Two runs produce the same key iff
/// their nodes are interchangeable — this is what per-node journals are
/// keyed on.
std::string node_key(const char* stage, const std::string& property,
                     const checker::CheckOptions& check) {
  return std::string(stage) + "." + property + "#" + fingerprint_hash(check);
}

/// Per-node checker options: one journal per node, bound to the node
/// identity so --resume cannot feed one node's cursors to another.
checker::CheckOptions dag_node_options(const HolisticOptions& options, const char* stage,
                                       const std::string& property) {
  checker::CheckOptions check = options.check;
  check.journal_node = node_key(stage, property, check);
  if (!options.journal_prefix.empty()) {
    const std::string path =
        options.journal_prefix + "." + stage + "." + property + ".jsonl";
    check.journal_path = path;
    if (options.resume && std::ifstream(path).good()) check.resume_path = path;
  }
  return check;
}

std::string format_eta(const dag::Progress& progress) {
  if (progress.eta_seconds < 0.0) return "";
  std::ostringstream os;
  os << ", eta " << progress.eta_seconds << "s";
  return os.str();
}

HolisticReport verify_dag(const HolisticOptions& options) {
  const Stopwatch stopwatch;
  HolisticReport report;
  report.dag_lanes = std::max(1, options.dag_workers);

  const ta::ThresholdAutomaton bv = models::bv_broadcast();
  const std::vector<spec::Property> bv_props = models::bv_properties(bv);
  const ta::ThresholdAutomaton consensus = models::simplified_consensus_one_round();
  const std::vector<spec::Property> consensus_props = models::simplified_properties(consensus);
  std::optional<ta::ThresholdAutomaton> naive;
  std::vector<spec::Property> naive_props;
  if (options.include_naive_attempt) {
    naive.emplace(models::naive_consensus_one_round());
    naive_props = models::naive_table2_properties(*naive);
  }

  // Results land in pre-allocated slots indexed like the property lists, so
  // the report (and any certificate emitted from it) is ordered exactly as
  // the sequential pipeline orders it, whatever the completion order was.
  // Unfilled slots (cancelled nodes) are compacted away — the sequential
  // pipeline would not have started those properties either.
  std::vector<std::optional<PropertyResult>> naive_slots(naive_props.size());
  std::vector<std::optional<PropertyResult>> bv_slots(bv_props.size());
  std::vector<std::optional<PropertyResult>> consensus_slots(consensus_props.size());

  dag::Graph graph;
  std::vector<dag::NodeId> all_nodes;
  const auto property_node = [&](const char* stage, const ta::ThresholdAutomaton& automaton,
                                 const spec::Property& property,
                                 std::optional<PropertyResult>& slot,
                                 checker::CheckOptions check, std::vector<dag::NodeId> deps,
                                 bool ok_needs_holds) {
    const dag::NodeId id = graph.add(
        check.journal_node,
        [&automaton, &property, &slot, check, ok_needs_holds] {
          PropertyResult result = checker::check_property(automaton, property, check);
          const bool ok =
              !result.interrupted && (!ok_needs_holds || result.verdict == Verdict::kHolds);
          slot = std::move(result);
          return ok;
        },
        std::move(deps));
    all_nodes.push_back(id);
    return id;
  };

  // The naive attempt is free-floating: nothing depends on it (the paper
  // uses it only as the negative result motivating the decomposition).
  for (std::size_t i = 0; i < naive_props.size(); ++i) {
    checker::CheckOptions check = dag_node_options(options, "naive", naive_props[i].name);
    apply_naive_budget(check, options.naive_timeout_seconds);
    // Re-stamp the identity: the budget tightened the timeout, and the node
    // key must fingerprint the options the node actually runs under.
    check.journal_node = node_key("naive", naive_props[i].name, check);
    property_node("naive", *naive, naive_props[i], naive_slots[i], std::move(check), {},
                  /*ok_needs_holds=*/false);
  }

  // The eight bv-broadcast nodes gate the gadget justification: every
  // consensus node depends on all of them, so one refuted bv property
  // cancels the entire consensus stage before it starts.
  std::vector<dag::NodeId> gadget;
  for (std::size_t i = 0; i < bv_props.size(); ++i) {
    gadget.push_back(property_node("bv", bv, bv_props[i], bv_slots[i],
                                   dag_node_options(options, "bv", bv_props[i].name), {},
                                   /*ok_needs_holds=*/true));
  }
  for (std::size_t i = 0; i < consensus_props.size(); ++i) {
    property_node("consensus", consensus, consensus_props[i], consensus_slots[i],
                  dag_node_options(options, "consensus", consensus_props[i].name), gadget,
                  /*ok_needs_holds=*/true);
  }

  const auto compact = [](std::vector<std::optional<PropertyResult>>& slots) {
    std::vector<PropertyResult> results;
    results.reserve(slots.size());
    for (std::optional<PropertyResult>& slot : slots) {
      if (slot) results.push_back(std::move(*slot));
    }
    return results;
  };
  bool composed = false;
  const auto finalize = [&] {
    report.naive_results = compact(naive_slots);
    report.bv_results = compact(bv_slots);
    report.consensus_results = compact(consensus_slots);
    compose_verdicts(report);
    composed = true;
  };
  // Theorem-6 recomposition is ordering-only: it waits for every node but
  // runs whatever the outcomes were — a partially failed pipeline still
  // reports its composed (unknown) verdicts, like the sequential one.
  graph.add(node_key("compose", "theorem6", options.check),
            [&finalize] {
              finalize();
              return true;
            },
            all_nodes, /*gated=*/false);

  dag::RunOptions run_options;
  run_options.lanes = report.dag_lanes;
  run_options.cancel = options.check.cancel;
  if (options.on_progress) {
    run_options.observer = [&options](dag::Event event, const dag::Node& node,
                                      const dag::Progress& progress) {
      std::ostringstream os;
      os << "[dag " << progress.settled << "/" << progress.total << "] " << node.key;
      if (event == dag::Event::kStart) {
        os << ": start";
      } else {
        os << ": " << dag::to_string(node.status);
        if (node.status != dag::NodeStatus::kCancelled) os << " (" << node.seconds << "s)";
      }
      os << format_eta(progress);
      options.on_progress(os.str());
    };
  }
  const dag::RunStats stats = dag::run(graph, run_options);
  // An interrupted run cancels the compose node with everything else; the
  // report still owes whatever verdicts settled before the interrupt.
  if (!composed) finalize();

  report.nodes_cancelled = stats.nodes_cancelled;
  report.total_seconds = stopwatch.seconds();
  report.cpu_seconds = sum_seconds(report);
  return report;
}

}  // namespace

bool HolisticReport::fully_verified() const {
  const auto all_hold = [](const std::vector<PropertyResult>& results) {
    return std::all_of(results.begin(), results.end(), [](const PropertyResult& r) {
      return r.verdict == Verdict::kHolds;
    });
  };
  return !bv_results.empty() && !consensus_results.empty() && all_hold(bv_results) &&
         all_hold(consensus_results);
}

void compose_verdicts(HolisticReport& report) {
  // The gadget inside the simplified TA is justified only if every
  // bv-broadcast property holds; its verdicts gate everything downstream.
  std::vector<const PropertyResult*> gadget;
  for (const PropertyResult& result : report.bv_results) gadget.push_back(&result);

  const auto with_gadget = [&gadget](std::vector<const PropertyResult*> own) {
    own.insert(own.end(), gadget.begin(), gadget.end());
    return own;
  };

  // [10, Proposition 2]: Inv1_v and Inv2_v imply Agree_v and Valid_v.
  report.agreement = combine(with_gadget({find(report.consensus_results, "Inv1_0"),
                                          find(report.consensus_results, "Inv1_1"),
                                          find(report.consensus_results, "Inv2_0"),
                                          find(report.consensus_results, "Inv2_1")}));
  report.validity = combine(with_gadget({find(report.consensus_results, "Inv2_0"),
                                         find(report.consensus_results, "Inv2_1")}));
  // Theorem 6: fairness (Def. 3) gives a good round; Corollary 5 turns it
  // into an empty M0 (or M1x) superround; (Good) and (Dec) then force every
  // process to decide, and (SRoundTerm) makes the termination formula
  // well-formed.
  report.termination = combine(with_gadget({find(report.consensus_results, "SRoundTerm"),
                                            find(report.consensus_results, "Dec_0"),
                                            find(report.consensus_results, "Dec_1"),
                                            find(report.consensus_results, "Good_0"),
                                            find(report.consensus_results, "Good_1")}));
}

HolisticReport verify_red_belly_consensus(const HolisticOptions& options) {
  if (options.dag_workers >= 1) return verify_dag(options);

  const Stopwatch stopwatch;
  HolisticReport report;

  if (options.include_naive_attempt) {
    const ta::ThresholdAutomaton naive = models::naive_consensus_one_round();
    checker::CheckOptions naive_options = stage_options(options, "naive");
    apply_naive_budget(naive_options, options.naive_timeout_seconds);
    report.naive_results =
        checker::check_properties(naive, models::naive_table2_properties(naive), naive_options);
  }

  const ta::ThresholdAutomaton bv = models::bv_broadcast();
  report.bv_results = checker::check_properties(bv, models::bv_properties(bv),
                                                stage_options(options, "bv"));

  const bool gadget_justified =
      std::all_of(report.bv_results.begin(), report.bv_results.end(),
                  [](const PropertyResult& r) { return r.verdict == Verdict::kHolds; });
  // An interrupted stage already flushed its journal; don't start the next.
  if (gadget_justified && !any_interrupted(report.naive_results) &&
      !any_interrupted(report.bv_results)) {
    const ta::ThresholdAutomaton consensus = models::simplified_consensus_one_round();
    report.consensus_results = checker::check_properties(
        consensus, models::simplified_properties(consensus), stage_options(options, "consensus"));
  }

  compose_verdicts(report);
  report.total_seconds = stopwatch.seconds();
  report.cpu_seconds = sum_seconds(report);
  return report;
}

std::string HolisticReport::to_string() const {
  std::ostringstream os;
  const auto section = [&os](const char* title, const std::vector<PropertyResult>& results) {
    if (results.empty()) return;
    os << title << "\n";
    for (const PropertyResult& result : results) {
      os << "  " << result.property << ": " << checker::to_string(result.verdict) << " ("
         << result.schemas_checked << " schemas, " << result.seconds << "s)";
      if (!result.note.empty()) os << " [" << result.note << "]";
      os << "\n";
    }
  };
  section("naive composite automaton (expected to exhaust its budget):", naive_results);
  section("binary value broadcast (Fig. 2):", bv_results);
  section("simplified consensus (Fig. 4, Appendix F):", consensus_results);
  os << "composed verdicts:\n";
  os << "  Agreement:  " << checker::to_string(agreement) << "\n";
  os << "  Validity:   " << checker::to_string(validity) << "\n";
  os << "  Termination (under Definition 3 fairness): " << checker::to_string(termination)
     << "\n";
  if (dag_lanes > 0) {
    os << "dag: " << dag_lanes << " lane(s)";
    if (nodes_cancelled > 0) os << ", " << nodes_cancelled << " node(s) cancelled";
    os << "\n";
  }
  os << "total time: " << total_seconds << "s wall, " << cpu_seconds << "s cpu\n";
  return os.str();
}

}  // namespace hv::pipeline
