#include "hv/synth/synthesis.h"

#include "hv/util/error.h"
#include "hv/util/stopwatch.h"

namespace hv::synth {

std::string Candidate::to_string() const {
  std::string out;
  if (a != 0) out += (a == 1 ? "" : std::to_string(a) + "*") + std::string("t");
  if (b != 0) {
    if (!out.empty()) out += " + ";
    out += std::to_string(b);
  }
  if (out.empty()) out = "0";
  if (c != 0) out += " - f";
  return out;
}

std::vector<Candidate> default_candidates(int max_a, int max_b) {
  std::vector<Candidate> candidates;
  for (int a = 0; a <= max_a; ++a) {
    for (int b = 0; b <= max_b; ++b) {
      if (a == 0 && b == 0) continue;  // "shared >= -c*f" is trivially true
      for (int c = 0; c <= 1; ++c) {
        candidates.push_back({a, b, c});
      }
    }
  }
  return candidates;
}

namespace {

void enumerate(const std::vector<HoleSpace>& holes, std::size_t index,
               std::vector<Candidate>& assignment,
               const std::function<bool(const std::vector<Candidate>&)>& visit, bool& stop) {
  if (stop) return;
  if (index == holes.size()) {
    if (!visit(assignment)) stop = true;
    return;
  }
  for (const Candidate& candidate : holes[index].candidates) {
    assignment.push_back(candidate);
    enumerate(holes, index + 1, assignment, visit, stop);
    assignment.pop_back();
    if (stop) return;
  }
}

}  // namespace

SynthesisResult synthesize(const std::vector<HoleSpace>& holes, const InstanceFactory& factory,
                           const SynthesisOptions& options) {
  const Stopwatch stopwatch;
  SynthesisResult result;
  std::vector<Candidate> assignment;
  bool stop = false;
  enumerate(holes, 0, assignment, [&](const std::vector<Candidate>& candidate) {
    ++result.candidates_tried;
    Evaluation evaluation;
    evaluation.assignment = candidate;
    const std::optional<Instance> instance = factory(candidate);
    if (!instance) {
      evaluation.failed_property = "(rejected by the sketch factory)";
      evaluation.failed_verdict = checker::Verdict::kUnknown;
      result.evaluations.push_back(std::move(evaluation));
      return true;
    }
    evaluation.works = true;
    for (const spec::Property& property : instance->properties) {
      const checker::PropertyResult outcome =
          checker::check_property(instance->automaton, property, options.check);
      if (outcome.verdict != checker::Verdict::kHolds) {
        evaluation.works = false;
        evaluation.failed_property = property.name;
        evaluation.failed_verdict = outcome.verdict;
        break;
      }
    }
    if (evaluation.works) result.solutions.push_back(candidate);
    result.evaluations.push_back(std::move(evaluation));
    return options.max_solutions == 0 ||
           static_cast<int>(result.solutions.size()) < options.max_solutions;
  }, stop);
  result.seconds = stopwatch.seconds();
  return result;
}

}  // namespace hv::synth
