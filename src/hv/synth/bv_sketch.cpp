#include "hv/synth/bv_sketch.h"

#include <string>

#include "hv/spec/compile.h"
#include "hv/spec/ltl.h"
#include "hv/ta/parser.h"
#include "hv/util/error.h"

namespace hv::synth {

namespace {

// "b0 >= a*t + b - c*f" for the guard; "b0 < a*t + b" for justice.
std::string guard_text(const std::string& counter, const Candidate& candidate) {
  std::string out = counter + " >= ";
  out += std::to_string(candidate.a) + "*t + " + std::to_string(candidate.b);
  if (candidate.c != 0) out += " - f";
  return out;
}

std::string justice_text(const std::string& location, const std::string& counter,
                         const Candidate& candidate) {
  return "loc" + location + " == 0 || " + counter + " < " + std::to_string(candidate.a) +
         "*t + " + std::to_string(candidate.b);
}

spec::StabilityOverride override_for(const ta::ThresholdAutomaton& ta, const char* rule_name,
                                     const std::string& condition) {
  spec::StabilityOverride entry;
  entry.rule = -1;
  for (ta::RuleId id = 0; id < ta.rule_count(); ++id) {
    if (ta.rule(id).name == rule_name) entry.rule = id;
  }
  HV_REQUIRE(entry.rule >= 0);
  entry.replacement = spec::predicate_to_cnf(spec::parse_ltl(ta, condition));
  return entry;
}

}  // namespace

std::optional<Instance> bv_broadcast_sketch(const std::vector<Candidate>& assignment) {
  HV_REQUIRE(assignment.size() == 2);
  const Candidate& echo = assignment[0];
  const Candidate& deliver = assignment[1];

  std::string text = R"(
ta BvSketch {
  parameters n, t, f;
  shared b0, b1;
  resilience n > 3*t;
  resilience t >= f;
  resilience f >= 0;
  processes n - f;
  initial V0, V1;
  locations B0, B1, B01, C0, C1, CB0, CB1, C01;
  rule r1: V0 -> B0 do b0 += 1;
  rule r2: V1 -> B1 do b1 += 1;
  rule r3: B0 -> C0 when DELIVER_B0;
  rule r4: B0 -> B01 when ECHO_B1 do b1 += 1;
  rule r5: B1 -> B01 when ECHO_B0 do b0 += 1;
  rule r6: B1 -> C1 when DELIVER_B1;
  rule r7: C0 -> CB0 when ECHO_B1 do b1 += 1;
  rule r8: B01 -> CB0 when DELIVER_B0;
  rule r9: B01 -> CB1 when DELIVER_B1;
  rule r10: C1 -> CB1 when ECHO_B0 do b0 += 1;
  rule r11: CB0 -> C01 when DELIVER_B1;
  rule r12: CB1 -> C01 when DELIVER_B0;
  selfloop C01;
}
)";
  const auto substitute = [&text](const std::string& placeholder, const std::string& value) {
    for (std::size_t pos = text.find(placeholder); pos != std::string::npos;
         pos = text.find(placeholder)) {
      text.replace(pos, placeholder.size(), value);
    }
  };
  substitute("DELIVER_B0", guard_text("b0", deliver));
  substitute("DELIVER_B1", guard_text("b1", deliver));
  substitute("ECHO_B0", guard_text("b0", echo));
  substitute("ECHO_B1", guard_text("b1", echo));

  Instance instance{ta::parse_ta(text).one_round_reduction(), {}};
  const ta::ThresholdAutomaton& ta = instance.automaton;

  spec::CompileOptions liveness;
  liveness.overrides.push_back(override_for(ta, "r3", justice_text("B0", "b0", deliver)));
  liveness.overrides.push_back(override_for(ta, "r4", justice_text("B0", "b1", echo)));
  liveness.overrides.push_back(override_for(ta, "r5", justice_text("B1", "b0", echo)));
  liveness.overrides.push_back(override_for(ta, "r6", justice_text("B1", "b1", deliver)));
  liveness.overrides.push_back(override_for(ta, "r7", justice_text("C0", "b1", echo)));
  liveness.overrides.push_back(override_for(ta, "r8", justice_text("B01", "b0", deliver)));
  liveness.overrides.push_back(override_for(ta, "r9", justice_text("B01", "b1", deliver)));
  liveness.overrides.push_back(override_for(ta, "r10", justice_text("C1", "b0", echo)));
  liveness.overrides.push_back(override_for(ta, "r11", justice_text("CB0", "b1", deliver)));
  liveness.overrides.push_back(override_for(ta, "r12", justice_text("CB1", "b0", deliver)));

  instance.properties.push_back(spec::compile(
      ta, "BV-Just0", "locV0 == 0 -> [](locC0 == 0 && locCB0 == 0 && locC01 == 0)"));
  instance.properties.push_back(spec::compile(
      ta, "BV-Just1", "locV1 == 0 -> [](locC1 == 0 && locCB1 == 0 && locC01 == 0)"));
  instance.properties.push_back(spec::compile(
      ta, "BV-Obl0",
      "[](b0 >= t + 1 -> <>(locV0 == 0 && locV1 == 0 && locB0 == 0 && locB1 == 0 && "
      "locB01 == 0 && locC1 == 0 && locCB1 == 0))",
      liveness));
  instance.properties.push_back(spec::compile(
      ta, "BV-Unif0",
      "<>(locC0 != 0 || locCB0 != 0 || locC01 != 0) -> "
      "<>(locV0 == 0 && locV1 == 0 && locB0 == 0 && locB1 == 0 && locB01 == 0 && "
      "locC1 == 0 && locCB1 == 0)",
      liveness));
  instance.properties.push_back(spec::compile(
      ta, "BV-Term",
      "<>(locV0 == 0 && locV1 == 0 && locB0 == 0 && locB1 == 0 && locB01 == 0)", liveness));
  return instance;
}

std::vector<HoleSpace> bv_broadcast_holes(std::vector<Candidate> candidates) {
  return {{"echo", candidates}, {"deliver", std::move(candidates)}};
}

}  // namespace hv::synth
