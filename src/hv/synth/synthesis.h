// Synthesis of threshold guards, in the spirit of the methodology the paper
// uses for its modelling ("using the synthesis methodology [42]" — Lazić et
// al., OPODIS'17): a *sketch* leaves selected guard thresholds open as
// holes of the shape
//
//     shared >= a*t + b - c*f        (a, b, c small naturals)
//
// and the synthesizer searches the candidate lattice for assignments under
// which every property of the specification is verified — for all
// parameters, by the parameterized checker. Unlike the cited work we search
// the (small) lattice exhaustively rather than counterexample-guided, which
// keeps the tool simple and makes the result complete over the lattice: the
// returned list is *every* working assignment, so the caller can inspect
// e.g. whether the paper's thresholds (t+1-f, 2t+1-f) are the weakest ones.
//
// The sketch is supplied as a factory that instantiates a concrete
// automaton + specification for a candidate assignment (returning nullopt
// for assignments it deems ill-formed). This keeps the library independent
// of how holes are embedded — guards, justice overrides and even property
// premises may all depend on the candidate.
#ifndef HV_SYNTH_SYNTHESIS_H
#define HV_SYNTH_SYNTHESIS_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hv/checker/parameterized.h"
#include "hv/spec/query.h"
#include "hv/ta/automaton.h"

namespace hv::synth {

/// One candidate threshold: shared >= a*t + b - c*f.
struct Candidate {
  int a = 0;
  int b = 0;
  int c = 0;

  friend bool operator==(const Candidate& lhs, const Candidate& rhs) = default;
  std::string to_string() const;
};

/// The candidate values one hole ranges over.
struct HoleSpace {
  std::string name;
  std::vector<Candidate> candidates;
};

/// Cartesian helper: all (a, b, c) with a in [0, max_a], b in [0, max_b],
/// c in {0, 1}, excluding the trivially-true threshold (a == b == 0).
std::vector<Candidate> default_candidates(int max_a = 2, int max_b = 1);

/// A concrete instantiation of the sketch for one assignment.
struct Instance {
  ta::ThresholdAutomaton automaton;
  std::vector<spec::Property> properties;
};

using InstanceFactory =
    std::function<std::optional<Instance>(const std::vector<Candidate>&)>;

struct SynthesisOptions {
  checker::CheckOptions check;
  /// Stop after this many working assignments (0 = collect all).
  int max_solutions = 0;
};

struct Evaluation {
  std::vector<Candidate> assignment;
  bool works = false;
  /// Name of the first property that failed (or was inconclusive).
  std::string failed_property;
  checker::Verdict failed_verdict = checker::Verdict::kHolds;
};

struct SynthesisResult {
  std::vector<Evaluation> evaluations;  // every candidate tried, in order
  std::vector<std::vector<Candidate>> solutions;
  std::int64_t candidates_tried = 0;
  double seconds = 0.0;
};

/// Exhaustive lattice search. Every candidate assignment is instantiated
/// and every property checked with the parameterized checker; an
/// assignment works iff every property holds.
SynthesisResult synthesize(const std::vector<HoleSpace>& holes, const InstanceFactory& factory,
                           const SynthesisOptions& options = {});

}  // namespace hv::synth

#endif  // HV_SYNTH_SYNTHESIS_H
