// The binary-value-broadcast sketch: Figure 2's automaton with the echo and
// delivery thresholds left open. Hole 0 ("echo") is the threshold at which
// a value is re-broadcast (the paper: t+1-f); hole 1 ("deliver") is the
// threshold at which it enters contestants (the paper: 2t+1-f). The
// instance factory plugs candidates into all twelve guarded rules and
// derives the matching justice assumptions (guaranteed progress counts
// correct messages only, i.e. the candidate without its -f slack).
#ifndef HV_SYNTH_BV_SKETCH_H
#define HV_SYNTH_BV_SKETCH_H

#include <optional>

#include "hv/synth/synthesis.h"

namespace hv::synth {

/// Instantiates the sketch for {echo, deliver} candidates; the returned
/// instance carries BV-Just0/1, BV-Obl0, BV-Unif0 and BV-Term.
std::optional<Instance> bv_broadcast_sketch(const std::vector<Candidate>& assignment);

/// The two holes with the given candidate lattice.
std::vector<HoleSpace> bv_broadcast_holes(std::vector<Candidate> candidates);

}  // namespace hv::synth

#endif  // HV_SYNTH_BV_SKETCH_H
