#include "hv/service/cache.h"

#include <utility>

namespace hv::service {

const ResultCache::Entry* ResultCache::find(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

bool ResultCache::insert(const std::string& key, int code, std::string response) {
  const std::int64_t cost = charge(key, response);
  if (cost > max_bytes_) return false;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (a re-run of a definitive request produced the same
    // bytes; keep the newer insertion most-recently-used).
    bytes_ -= charge(it->second->key, it->second->response);
    it->second->code = code;
    it->second->response = std::move(response);
    bytes_ += charge(it->second->key, it->second->response);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, code, std::move(response)});
    index_[key] = lru_.begin();
    bytes_ += cost;
  }
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= charge(victim.key, victim.response);
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
  return true;
}

}  // namespace hv::service
