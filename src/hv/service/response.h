// Canonical JSON rendering of checking results, shared by `hvc check
// --json` and the service daemon. A daemon response for a job must be
// byte-identical to what an in-process `hvc check --json` run over the same
// model/properties/options would print — that is the contract the result
// cache serves bytes under, and what the service smoke test diffs.
#ifndef HV_SERVICE_RESPONSE_H
#define HV_SERVICE_RESPONSE_H

#include <string>
#include <vector>

#include "hv/checker/result.h"
#include "hv/ta/automaton.h"

namespace hv::service {

/// One PropertyResult as a single-line JSON object (no trailing newline):
/// the exact field set and order `hvc check --json` has always printed.
std::string render_result_json(const ta::ThresholdAutomaton& ta,
                               const checker::PropertyResult& result);

/// A full run: one bare object for a single result, a "[..,\n ..]" array
/// for several, always with a trailing newline — byte-for-byte what the
/// CLI's --json output is.
std::string render_results_json(const ta::ThresholdAutomaton& ta,
                                const std::vector<checker::PropertyResult>& results);

/// The CLI exit-code convention: 0 all hold, 1 any violated, 3 any unknown.
int exit_code(const std::vector<checker::PropertyResult>& results);

}  // namespace hv::service

#endif  // HV_SERVICE_RESPONSE_H
