#include "hv/service/persist.h"

#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <utility>

#include "hv/util/error.h"
#include "hv/util/version.h"

namespace hv::service {

namespace {

void sync_to_disk(std::FILE* file) {
#if defined(__linux__)
  ::fdatasync(fileno(file));
#else
  ::fsync(fileno(file));
#endif
}

}  // namespace

EventLog::EventLog(std::string path) : path_(std::move(path)) {
  bool fresh = true;
  {
    struct stat st = {};
    if (::stat(path_.c_str(), &st) == 0 && st.st_size > 0) fresh = false;
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) throw Error("service: cannot open event log: " + path_);
  if (fresh) {
    const cert::Json header = cert::Json::Object{{"hv_service_log", 1},
                                                 {"hvc_version", std::string(kHvcVersion)}};
    const std::string line = header.to_string() + "\n";
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
    sync_to_disk(file_);
  }
}

EventLog::~EventLog() {
  if (file_ != nullptr) {
    std::fflush(file_);
    sync_to_disk(file_);
    std::fclose(file_);
  }
}

void EventLog::append(const cert::Json& event) {
  const std::string line = event.to_string() + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  sync_to_disk(file_);
}

std::vector<cert::Json> EventLog::load(const std::string& path) {
  std::vector<cert::Json> events;
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0) return events;  // fresh daemon
    throw Error("service: cannot read event log: " + path);
  }
  std::string line;
  bool saw_header = false;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    cert::Json parsed;
    try {
      parsed = cert::Json::parse(line);
    } catch (const std::exception&) {
      // Torn tail (or a corrupt line): stop trusting anything after it —
      // the log is append-only, so everything before is intact.
      break;
    }
    if (!saw_header) {
      if (parsed.find("hv_service_log") == nullptr) {
        throw Error("service: " + path + " is not a service event log");
      }
      saw_header = true;
      continue;
    }
    if (parsed.find("event") != nullptr) events.push_back(std::move(parsed));
  }
  if (!saw_header && !events.empty()) {
    throw Error("service: " + path + " is not a service event log");
  }
  return events;
}

}  // namespace hv::service
