// Admission control and scheduling of the verification service.
//
// A Job is one submitted check/certify request: model text, property
// specs, semantic CheckOptions, a tenant, a priority and the cache key its
// result will be stored under. The queue enforces per-tenant quotas at
// admission (max queued+running, and an optional cap on the total schema
// budget a tenant may have in flight) and dispatches fairly across
// tenants: the tenant with the fewest running jobs goes first, ties broken
// round-robin by least-recent dispatch, and within a tenant higher
// priority wins, then FIFO by job id. A tenant at its max_running quota is
// skipped even when the global running limit has room — one tenant's burst
// cannot monopolize the fleet.
//
// The queue itself is a plain data structure; the daemon serializes access
// under its own mutex (and is the only writer of Job fields after
// dispatch, except for the atomics, which progress observers read live).
#ifndef HV_SERVICE_QUEUE_H
#define HV_SERVICE_QUEUE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hv/checker/parameterized.h"
#include "hv/checker/result.h"
#include "hv/dist/protocol.h"

namespace hv::service {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* to_string(JobState state);

/// One submission. Not movable once enqueued (progress/cancel are atomics
/// observed concurrently); the queue owns jobs via unique_ptr.
struct Job {
  std::int64_t id = 0;
  std::string tenant;
  int priority = 0;
  std::string model_text;
  std::vector<dist::PropertySpec> specs;
  checker::CheckOptions options;  // semantic fields only; plumbing is daemon-set
  /// Content-addressed identity: model hash + specs + options fingerprint
  /// (+ the daemon's per-job worker mode). See cache.h.
  std::string key;

  JobState state = JobState::kQueued;
  /// True iff the response was served from the result cache (zero schemas
  /// solved by this job).
  bool cached = false;
  int code = -1;                // CLI exit-code convention, valid when done
  std::string response;         // rendered results JSON, valid when done
  std::string error;            // valid when failed
  std::size_t properties = 0;   // resolved property count (ETA denominator)
  double submitted_seconds = 0.0;  // daemon clock
  double started_seconds = 0.0;
  double finished_seconds = 0.0;

  checker::ProgressCounters progress;
  std::atomic<bool> cancel{false};
};

struct QueueLimits {
  /// Global cap on concurrently running jobs.
  int max_running = 2;
  /// Per-tenant cap on jobs admitted but not yet finished (queued+running).
  int tenant_max_queued = 64;
  /// Per-tenant cap on concurrently running jobs.
  int tenant_max_running = 2;
  /// Per-tenant cap on the summed enumeration budget (max_schemas) of its
  /// queued+running jobs; 0 disables. Admission-time: a submission that
  /// would push the tenant's in-flight schema budget past the cap is
  /// rejected, bounding worst-case solver work a tenant can stage.
  std::int64_t tenant_schema_budget = 0;
};

class JobQueue {
 public:
  explicit JobQueue(QueueLimits limits) : limits_(limits) {}

  /// Admission check for a prospective job (before enqueue). Returns the
  /// empty string to admit, else a precise rejection reason.
  std::string admit(const std::string& tenant, std::int64_t requested_schemas) const;

  /// Takes ownership; the job must be in kQueued state.
  Job* enqueue(std::unique_ptr<Job> job);

  /// Picks the next job to run under the fair-share policy and marks it
  /// kRunning; nullptr when nothing is runnable (empty queue, global limit,
  /// or every queued tenant at its running quota).
  Job* dispatch(double now_seconds);

  /// Bookkeeping when a running job reaches a terminal state (the caller
  /// already set job.state).
  void finished(const Job& job);

  Job* find(std::int64_t id);
  const std::vector<std::unique_ptr<Job>>& jobs() const noexcept { return jobs_; }

  int running() const noexcept { return running_; }
  int queued() const;

 private:
  int tenant_in_flight(const std::string& tenant) const;
  int tenant_running(const std::string& tenant) const;
  std::int64_t tenant_schemas_in_flight(const std::string& tenant) const;

  QueueLimits limits_;
  std::vector<std::unique_ptr<Job>> jobs_;  // insertion order = id order
  int running_ = 0;
  /// tenant -> last dispatch stamp (fair-share tie-break).
  std::vector<std::pair<std::string, double>> last_dispatch_;
};

}  // namespace hv::service

#endif  // HV_SERVICE_QUEUE_H
