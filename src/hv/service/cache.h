// Content-addressed result cache of the verification service.
//
// A cache entry maps a *semantic request identity* — model content hash,
// the resolved property set, and the canonical options fingerprint
// (checker::options_fingerprint, which folds environment-gated modes like
// HV_NO_LEMMAS and HV_NO_FAST_RATIONAL) — to the verbatim response bytes a
// fresh run produced, plus its exit code. Identical resubmissions are
// answered from the entry with zero schemas solved, byte-identical to the
// original run.
//
// Trust boundary: only *definitive* runs are cached — exit code 0 (holds)
// or 1 (violated, with its validated counterexample embedded in the
// response). Inconclusive runs (unknown verdicts, cancellation, timeouts)
// are never inserted: their outcome depends on budgets and wall-clock, not
// just the keyed inputs. Certify-mode responses are cacheable like any
// other (the certificate file itself is written by the original run; a
// cache hit re-serves the verdict JSON, and auditing remains the caller's
// re-check of record).
//
// Eviction is byte-size-bounded LRU: every entry is charged its key +
// response bytes plus a fixed overhead, and inserts evict least-recently
// -used entries until the budget holds. An entry larger than the whole
// budget is not cached at all.
#ifndef HV_SERVICE_CACHE_H
#define HV_SERVICE_CACHE_H

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace hv::service {

class ResultCache {
 public:
  struct Entry {
    std::string key;
    int code = 0;
    std::string response;
  };

  /// `max_bytes` <= 0 disables caching entirely (every find misses).
  explicit ResultCache(std::int64_t max_bytes) : max_bytes_(max_bytes) {}

  /// Looks the key up and, on a hit, marks the entry most-recently-used.
  /// The pointer stays valid until the next insert().
  const Entry* find(const std::string& key);

  /// Inserts (or refreshes) an entry and evicts LRU entries until the byte
  /// budget holds again. Returns false iff the entry alone exceeds the
  /// budget (it is then not cached — correct, just never instant).
  bool insert(const std::string& key, int code, std::string response);

  std::int64_t bytes() const noexcept { return bytes_; }
  std::int64_t entries() const noexcept { return static_cast<std::int64_t>(lru_.size()); }
  std::int64_t hits() const noexcept { return hits_; }
  std::int64_t misses() const noexcept { return misses_; }
  std::int64_t evictions() const noexcept { return evictions_; }

  /// What an entry costs against the byte budget.
  static std::int64_t charge(const std::string& key, const std::string& response) {
    return static_cast<std::int64_t>(key.size() + response.size()) + kEntryOverhead;
  }

 private:
  static constexpr std::int64_t kEntryOverhead = 64;

  std::int64_t max_bytes_ = 0;
  std::int64_t bytes_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace hv::service

#endif  // HV_SERVICE_CACHE_H
