#include "hv/service/response.h"

#include <sstream>

namespace hv::service {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

double rational_fast_ratio(const checker::PropertyResult& result) {
  const std::int64_t total = result.rational_fast_ops + result.rational_big_ops;
  if (total == 0) return 1.0;
  return static_cast<double>(result.rational_fast_ops) / static_cast<double>(total);
}

}  // namespace

std::string render_result_json(const ta::ThresholdAutomaton& ta,
                               const checker::PropertyResult& result) {
  // ostringstream with default formatting: doubles print with 6 significant
  // digits, exactly like the std::ostream the CLI historically wrote to.
  std::ostringstream out;
  out << "{\"property\": \"" << json_escape(result.property) << "\", \"verdict\": \""
      << checker::to_string(result.verdict) << "\", \"schemas\": "
      << result.schemas_checked << ", \"pruned\": " << result.schemas_pruned
      << ", \"cut\": " << result.schemas_cut
      << ", \"lemma_hits\": " << result.lemma_hits
      << ", \"lemmas_learned\": " << result.lemmas_learned
      << ", \"unknown_schemas\": " << result.schemas_unknown
      << ", \"resumed\": " << result.schemas_resumed << ", \"retries\": " << result.retries
      << ", \"seconds\": " << result.seconds << ", \"pivots\": " << result.simplex_pivots
      << ", \"rational_fast_ops\": " << result.rational_fast_ops
      << ", \"rational_big_ops\": " << result.rational_big_ops
      << ", \"rational_fast_ratio\": " << rational_fast_ratio(result)
      << ", \"note\": \"" << json_escape(result.note) << "\"";
  if (result.schemas_spot_checked > 0) {
    // Rendered only when spot-checking was armed, so trusted-fleet runs stay
    // byte-identical to in-process output.
    out << ", \"spot_checked\": " << result.schemas_spot_checked
        << ", \"spot_disagreements\": " << result.spot_check_disagreements;
  }
  if (result.incremental) {
    out << ", \"segments_pushed\": " << result.incremental->segments_pushed
        << ", \"segments_popped\": " << result.incremental->segments_popped
        << ", \"segments_reused\": " << result.incremental->segments_reused
        << ", \"prefix_reuse_ratio\": " << result.incremental->prefix_reuse_ratio();
  }
  if (result.counterexample) {
    out << ", \"counterexample\": \"" << json_escape(result.counterexample->to_string(ta))
        << "\"";
  }
  out << "}";
  return out.str();
}

std::string render_results_json(const ta::ThresholdAutomaton& ta,
                                const std::vector<checker::PropertyResult>& results) {
  std::string out;
  const bool many = results.size() != 1;
  if (many) out += "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out += ",\n ";
    out += render_result_json(ta, results[i]);
  }
  if (many) out += "]";
  out += "\n";
  return out;
}

int exit_code(const std::vector<checker::PropertyResult>& results) {
  int code = 0;
  for (const checker::PropertyResult& result : results) {
    if (result.verdict == checker::Verdict::kViolated) return 1;
    if (result.verdict == checker::Verdict::kUnknown) code = 3;
  }
  return code;
}

}  // namespace hv::service
