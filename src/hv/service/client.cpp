#include "hv/service/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "hv/dist/frame.h"
#include "hv/util/error.h"
#include "hv/util/stopwatch.h"
#include "hv/util/version.h"

namespace hv::service {

Client::Client(const std::string& address, double retry_seconds) {
  const dist::Address parsed = dist::parse_address(address);
  Stopwatch watch;
  int backoff_ms = 20;
  for (;;) {
    const int fd = dist::connect_to(parsed);
    if (fd >= 0) {
      conn_ = std::make_unique<dist::Conn>(fd);
      return;
    }
    if (watch.seconds() >= retry_seconds) {
      throw Error("service: cannot connect to " + address);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 500);
  }
}

Client::~Client() {
  if (conn_) conn_->close();
}

cert::Json Client::request(const cert::Json& message, int timeout_ms) {
  if (!conn_ || !conn_->valid()) throw Error("service: connection is closed");
  if (!conn_->send(message)) throw Error("service: send failed (daemon gone?)");
  cert::Json reply;
  const dist::FrameStatus status = conn_->recv(&reply, timeout_ms);
  if (status != dist::FrameStatus::kOk) {
    throw Error(std::string("service: no reply from daemon (") + dist::to_string(status) +
                ")");
  }
  return reply;
}

cert::Json Client::submit(const SubmitRequest& request) {
  cert::Json message = cert::Json::Object{
      {"type", "submit"},
      {"protocol", kServiceProtocolVersion},
      {"tenant", request.tenant},
      {"priority", request.priority},
      {"model_text", request.model_text},
      {"properties", dist::specs_to_json(request.specs)},
      {"options", dist::options_to_json(request.options)},
      {"threads", request.options.workers}};
  cert::Json reply = this->request(message);
  const cert::Json* type = reply.find("type");
  if (type != nullptr && type->as_string() == "error") {
    throw Error("service: " + reply.at("message").as_string());
  }
  return reply;
}

cert::Json Client::status(std::int64_t job) {
  cert::Json message = cert::Json::Object{{"type", "status"}};
  if (job >= 0) message.set("job", job);
  return request(message);
}

cert::Json Client::result(std::int64_t job, bool wait,
                          const std::function<void(const cert::Json&)>& on_progress) {
  if (!conn_ || !conn_->valid()) throw Error("service: connection is closed");
  const cert::Json message =
      cert::Json::Object{{"type", "result"}, {"job", job}, {"wait", wait}};
  if (!conn_->send(message)) throw Error("service: send failed (daemon gone?)");
  for (;;) {
    cert::Json frame;
    // Generous per-frame deadline: the daemon streams progress every ~200ms
    // while a waited job runs, so silence this long means it died.
    const dist::FrameStatus status = conn_->recv(&frame, 60'000);
    if (status != dist::FrameStatus::kOk) {
      throw Error(std::string("service: result stream broken (") + dist::to_string(status) +
                  ")");
    }
    const cert::Json* type = frame.find("type");
    if (type != nullptr && type->as_string() == "progress") {
      if (on_progress) on_progress(frame);
      if (!wait) return frame;
      continue;
    }
    return frame;  // result or error
  }
}

cert::Json Client::cancel(std::int64_t job) {
  return request(cert::Json::Object{{"type", "cancel"}, {"job", job}});
}

}  // namespace hv::service
