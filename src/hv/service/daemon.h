// The multi-tenant verification daemon (`hvc daemon --listen <addr>`).
//
// A persistent server accepting many concurrent check/certify submissions
// over the same HVF1 frame protocol the distributed checker speaks
// (frame.h / dist::Conn), answering each with the byte-identical JSON an
// in-process `hvc check --json` run would print. Four cooperating pieces:
//
//   admission + queue   per-tenant quotas and fair-share dispatch
//                       (queue.h); jobs execute in-process or, with
//                       job_workers >= 2, on a fork-local PR-5 lease fleet
//                       per job (dist::check_distributed_local)
//   result cache        content-addressed LRU over (model hash, property
//                       set, canonical options fingerprint); identical
//                       resubmissions answer instantly with zero schemas
//                       solved (cache.h)
//   crash-safe state    an fsync-per-event queue log plus one checker
//                       schema journal per job (persist.h): SIGKILL +
//                       restart re-queues unfinished jobs (which resume
//                       from their journals) and re-serves finished ones
//                       from the re-seeded cache
//   progress streaming  `hvc status`/`hvc result --wait` read live
//                       ProgressCounters (schemas enumerated/solved/cut,
//                       lease fleet size, an ETA extrapolated from settled
//                       properties)
//
// Client frames (one JSON object per frame, "type"-tagged):
//   client -> daemon
//     submit  {protocol, tenant, priority?, model_text, properties[],
//              options{}, threads?}
//     status  {job?}
//     result  {job, wait?}
//     cancel  {job}
//   daemon -> client
//     submitted {job, state, cached}
//     status    {now, running, queued, cache{}, jobs[]}
//     progress  {job, state, tenant, enumerated, solved, pruned, cut,
//                unknown, resumed, properties_done, properties, workers,
//                elapsed, eta_seconds}   (streamed while result waits)
//     result    {job, state, code, cached, response}
//     ok        {}                        (cancel acknowledged)
//     error     {message}                 (admission/quota/protocol)
#ifndef HV_SERVICE_DAEMON_H
#define HV_SERVICE_DAEMON_H

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "hv/dist/protocol.h"
#include "hv/service/queue.h"

namespace hv::service {

struct DaemonOptions {
  /// Queue persistence root: the event log (queue.jsonl) and one schema
  /// journal per job (job-<id>.jsonl) live here. Created if missing.
  std::string state_dir;
  /// Result-cache byte budget; <= 0 disables caching.
  std::int64_t cache_bytes = 64ll * 1024 * 1024;
  QueueLimits limits;
  /// >= 2: execute each job on that many fork-local worker processes
  /// (dist::check_distributed_local) instead of in-process threads.
  int job_workers = 0;
  /// With job_workers >= 2: fraction of worker-reported verdicts each
  /// job's coordinator re-solves in-process (dist::DistOptions::
  /// spot_check_rate — the Byzantine-worker defense). 0 trusts the
  /// fork-local fleet, which shares the daemon's binary anyway; raise it
  /// when the worker pool is ever opened to foreign processes.
  double spot_check_rate = 0.0;
  /// Schema-journal durability batch for jobs (checker journal records per
  /// fsync). Smaller than the CLI default so a killed daemon resumes close
  /// to the kill point.
  int journal_flush_batch = 32;
  /// Cooperative shutdown: when the pointee turns true the daemon stops
  /// accepting, cancels running jobs, and returns. Queued jobs stay in the
  /// event log and re-run on the next start.
  const std::atomic<bool>* stop = nullptr;
};

/// Daemon-lifetime counters, for logs/bench.
struct DaemonStats {
  std::int64_t jobs_submitted = 0;
  std::int64_t jobs_done = 0;
  std::int64_t jobs_failed = 0;
  std::int64_t jobs_cancelled = 0;
  std::int64_t cache_hits = 0;
  std::int64_t jobs_recovered = 0;  // re-queued by event-log replay
};

/// Content-addressed identity of one submission: what the result cache and
/// the event log key on. Deterministic in (model content hash, resolved
/// property specs, checker::options_fingerprint, the daemon's per-job
/// worker mode).
std::string job_key(const std::string& model_hash, const std::vector<dist::PropertySpec>& specs,
                    const std::string& options_fingerprint, int job_workers);

/// Binds `listen_address` ("unix:/path" or "tcp:host:port") and serves
/// until `options.stop`. Returns 0 on a clean shutdown. Throws hv::Error
/// for startup failures (bad address, unopenable state dir).
int run_daemon(const std::string& listen_address, const DaemonOptions& options,
               std::ostream& log, DaemonStats* stats = nullptr);

/// Same over an already-listening fd (tests, bench); takes ownership.
int run_daemon_fd(int listen_fd, const DaemonOptions& options, std::ostream& log,
                  DaemonStats* stats = nullptr);

}  // namespace hv::service

#endif  // HV_SERVICE_DAEMON_H
