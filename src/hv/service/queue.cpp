#include "hv/service/queue.h"

#include <algorithm>
#include <limits>

namespace hv::service {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

int JobQueue::tenant_in_flight(const std::string& tenant) const {
  int count = 0;
  for (const auto& job : jobs_) {
    if (job->tenant != tenant) continue;
    if (job->state == JobState::kQueued || job->state == JobState::kRunning) ++count;
  }
  return count;
}

int JobQueue::tenant_running(const std::string& tenant) const {
  int count = 0;
  for (const auto& job : jobs_) {
    if (job->tenant == tenant && job->state == JobState::kRunning) ++count;
  }
  return count;
}

std::int64_t JobQueue::tenant_schemas_in_flight(const std::string& tenant) const {
  std::int64_t total = 0;
  for (const auto& job : jobs_) {
    if (job->tenant != tenant) continue;
    if (job->state == JobState::kQueued || job->state == JobState::kRunning) {
      total += job->options.enumeration.max_schemas;
    }
  }
  return total;
}

std::string JobQueue::admit(const std::string& tenant, std::int64_t requested_schemas) const {
  if (tenant.empty()) return "submission names no tenant";
  if (tenant_in_flight(tenant) >= limits_.tenant_max_queued) {
    return "tenant '" + tenant + "' is at its queue quota (" +
           std::to_string(limits_.tenant_max_queued) + " jobs in flight)";
  }
  if (limits_.tenant_schema_budget > 0 &&
      tenant_schemas_in_flight(tenant) + requested_schemas > limits_.tenant_schema_budget) {
    return "tenant '" + tenant + "' is at its schema budget (" +
           std::to_string(limits_.tenant_schema_budget) + " schemas in flight)";
  }
  return {};
}

Job* JobQueue::enqueue(std::unique_ptr<Job> job) {
  jobs_.push_back(std::move(job));
  return jobs_.back().get();
}

Job* JobQueue::dispatch(double now_seconds) {
  if (running_ >= limits_.max_running) return nullptr;
  const auto stamp_of = [&](const std::string& tenant) {
    for (const auto& [name, at] : last_dispatch_) {
      if (name == tenant) return at;
    }
    return -1.0;  // never dispatched: beats every stamped tenant
  };
  // Fair share, pass 1: among tenants with queued work and headroom under
  // their running quota, pick the one with the fewest running jobs;
  // tie-break by least-recent dispatch so equally loaded tenants
  // round-robin.
  const Job* chosen_tenant = nullptr;
  int chosen_running = std::numeric_limits<int>::max();
  double chosen_stamp = std::numeric_limits<double>::max();
  for (const auto& job : jobs_) {
    if (job->state != JobState::kQueued) continue;
    if (chosen_tenant != nullptr && job->tenant == chosen_tenant->tenant) continue;
    const int running_count = tenant_running(job->tenant);
    if (running_count >= limits_.tenant_max_running) continue;
    const double stamp = stamp_of(job->tenant);
    if (running_count < chosen_running ||
        (running_count == chosen_running && stamp < chosen_stamp)) {
      chosen_tenant = job.get();
      chosen_running = running_count;
      chosen_stamp = stamp;
    }
  }
  if (chosen_tenant == nullptr) return nullptr;
  // Pass 2: the chosen tenant's best queued job — highest priority, then
  // FIFO by id (the scan runs in id order).
  Job* best = nullptr;
  for (const auto& job : jobs_) {
    if (job->state != JobState::kQueued || job->tenant != chosen_tenant->tenant) continue;
    if (best == nullptr || job->priority > best->priority) best = job.get();
  }
  best->state = JobState::kRunning;
  best->started_seconds = now_seconds;
  ++running_;
  bool stamped = false;
  for (auto& [tenant, at] : last_dispatch_) {
    if (tenant == best->tenant) {
      at = now_seconds;
      stamped = true;
    }
  }
  if (!stamped) last_dispatch_.emplace_back(best->tenant, now_seconds);
  return best;
}

void JobQueue::finished(const Job& job) {
  (void)job;
  if (running_ > 0) --running_;
}

Job* JobQueue::find(std::int64_t id) {
  for (const auto& job : jobs_) {
    if (job->id == id) return job.get();
  }
  return nullptr;
}

int JobQueue::queued() const {
  int count = 0;
  for (const auto& job : jobs_) {
    if (job->state == JobState::kQueued) ++count;
  }
  return count;
}

}  // namespace hv::service
