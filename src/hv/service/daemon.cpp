#include "hv/service/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "hv/cert/json.h"
#include "hv/checker/journal.h"
#include "hv/dist/frame.h"
#include "hv/dist/local.h"
#include "hv/service/cache.h"
#include "hv/service/persist.h"
#include "hv/service/response.h"
#include "hv/ta/parser.h"
#include "hv/util/error.h"
#include "hv/util/stopwatch.h"
#include "hv/util/version.h"

namespace hv::service {

namespace {

bool file_exists(const std::string& path) {
  struct stat st = {};
  return ::stat(path.c_str(), &st) == 0;
}

std::string job_journal_path(const std::string& state_dir, std::int64_t id) {
  return state_dir + "/job-" + std::to_string(id) + ".jsonl";
}

cert::Json error_frame(const std::string& message) {
  return cert::Json::Object{{"type", "error"}, {"message", message}};
}

/// Everything the daemon's threads share. The mutex guards the queue, the
/// cache, the event log sequencing and every non-atomic Job field; the two
/// condition variables split wakeups by audience (executors wait for
/// dispatchable jobs, result-waiters for terminal transitions).
struct Daemon {
  Daemon(const DaemonOptions& opts, std::ostream& log_stream)
      : options(opts), log(log_stream), queue(opts.limits), cache(opts.cache_bytes) {}

  const DaemonOptions& options;
  std::ostream& log;
  DaemonStats stats;
  Stopwatch clock;

  std::mutex mutex;
  std::condition_variable job_event;       // new/finished jobs: executors
  std::condition_variable progress_event;  // terminal transitions: waiters
  JobQueue queue;
  ResultCache cache;
  std::unique_ptr<EventLog> events;
  std::int64_t next_id = 1;
  bool closing = false;
};

// --- persistence ------------------------------------------------------------

cert::Json submit_event(const Job& job) {
  return cert::Json::Object{{"event", "submit"},
                            {"job", job.id},
                            {"tenant", job.tenant},
                            {"priority", job.priority},
                            {"model_text", job.model_text},
                            {"properties", dist::specs_to_json(job.specs)},
                            {"options", dist::options_to_json(job.options)},
                            {"threads", job.options.workers},
                            {"key", job.key}};
}

cert::Json done_event(const Job& job) {
  return cert::Json::Object{{"event", "done"},
                            {"job", job.id},
                            {"code", job.code},
                            {"cached", job.cached},
                            {"response", job.response}};
}

/// Rebuilds the queue from the event log: jobs with a terminal event land
/// in that state (done ones re-seed the cache), the rest go back to queued
/// and will resume from their per-job schema journal.
void replay(Daemon& d, const std::string& log_path) {
  const std::vector<cert::Json> events = EventLog::load(log_path);
  for (const cert::Json& event : events) {
    const std::string kind = event.at("event").as_string();
    if (kind == "submit") {
      auto job = std::make_unique<Job>();
      job->id = event.at("job").as_int();
      job->tenant = event.at("tenant").as_string();
      job->priority = static_cast<int>(event.at("priority").as_int());
      job->model_text = event.at("model_text").as_string();
      job->specs = dist::specs_from_json(event.at("properties"));
      job->options = dist::options_from_json(event.at("options"));
      if (const cert::Json* threads = event.find("threads")) {
        job->options.workers = static_cast<int>(threads->as_int());
      }
      job->key = event.at("key").as_string();
      job->properties = job->specs.size();
      if (job->id >= d.next_id) d.next_id = job->id + 1;
      d.queue.enqueue(std::move(job));
      continue;
    }
    Job* job = d.queue.find(event.at("job").as_int());
    if (job == nullptr) continue;  // terminal event for an unknown job
    if (kind == "done") {
      job->state = JobState::kDone;
      job->code = static_cast<int>(event.at("code").as_int());
      job->cached = event.at("cached").as_bool();
      job->response = event.at("response").as_string();
      if (job->code == 0 || job->code == 1) {
        d.cache.insert(job->key, job->code, job->response);
      }
    } else if (kind == "failed") {
      job->state = JobState::kFailed;
      job->error = event.at("error").as_string();
    } else if (kind == "cancelled") {
      job->state = JobState::kCancelled;
      job->cancel.store(true);
    }
  }
  for (const auto& job : d.queue.jobs()) {
    if (job->state == JobState::kQueued) ++d.stats.jobs_recovered;
  }
}

// --- job execution ----------------------------------------------------------

/// Runs one dispatched job to completion. Called without the lock held; the
/// terminal transition (state, event append, cache insert) happens under it.
void run_job(Daemon& d, Job& job) {
  std::vector<checker::PropertyResult> results;
  std::string response;
  int code = -1;
  std::string failure;
  try {
    const ta::ThresholdAutomaton ta = ta::parse_ta(job.model_text).one_round_reduction();
    checker::CheckOptions options = job.options;
    options.progress = &job.progress;
    options.cancel = &job.cancel;
    options.journal_flush_batch = d.options.journal_flush_batch;
    options.journal_path = job_journal_path(d.options.state_dir, job.id);
    // A journal left by a killed daemon lets the re-run skip everything the
    // first attempt settled. Certify runs cannot resume (resumed schemas
    // carry no proofs), so they restart from scratch instead.
    if (!options.certify && file_exists(options.journal_path)) {
      options.resume_path = options.journal_path;
    }
    if (d.options.job_workers >= 2) {
      dist::DistOptions dist_options;
      dist_options.check = options;
      dist_options.expected_workers = d.options.job_workers;
      dist_options.spot_check_rate = d.options.spot_check_rate;
      results = dist::check_distributed_local(job.model_text, job.specs, d.options.job_workers,
                                              dist_options);
    } else {
      const std::vector<spec::Property> properties = dist::resolve_properties(ta, job.specs);
      results = checker::check_properties(ta, properties, options);
    }
    response = render_results_json(ta, results);
    code = exit_code(results);
  } catch (const std::exception& error) {
    failure = error.what();
  }

  std::lock_guard<std::mutex> lock(d.mutex);
  job.finished_seconds = d.clock.seconds();
  if (job.cancel.load()) {
    // Either a client cancel (its event is already on disk — handle_cancel
    // wrote it when it flipped the flag) or daemon shutdown (no event: the
    // job replays as queued next start and resumes from its journal).
    job.state = JobState::kCancelled;
    ++d.stats.jobs_cancelled;
  } else if (!failure.empty()) {
    job.state = JobState::kFailed;
    job.error = failure;
    ++d.stats.jobs_failed;
    d.events->append(cert::Json::Object{{"event", "failed"}, {"job", job.id},
                                        {"error", job.error}});
    std::remove(job_journal_path(d.options.state_dir, job.id).c_str());
  } else {
    job.state = JobState::kDone;
    job.code = code;
    job.response = std::move(response);
    ++d.stats.jobs_done;
    // Trust boundary: only definitive verdicts enter the cache (see
    // cache.h); an inconclusive exit 3 is recorded but never re-served.
    if (job.code == 0 || job.code == 1) {
      d.cache.insert(job.key, job.code, job.response);
    }
    d.events->append(done_event(job));
    std::remove(job_journal_path(d.options.state_dir, job.id).c_str());
  }
  d.queue.finished(job);
}

void executor_loop(Daemon& d) {
  std::unique_lock<std::mutex> lock(d.mutex);
  for (;;) {
    if (d.closing) return;
    Job* job = d.queue.dispatch(d.clock.seconds());
    if (job == nullptr) {
      d.job_event.wait(lock);
      continue;
    }
    lock.unlock();
    run_job(d, *job);
    lock.lock();
    d.job_event.notify_all();  // a slot freed: more work may be dispatchable
    d.progress_event.notify_all();
  }
}

// --- request handlers -------------------------------------------------------

void handle_submit(Daemon& d, dist::Conn& conn, const cert::Json& msg) {
  const cert::Json* protocol = msg.find("protocol");
  if (protocol == nullptr || protocol->as_int() != kServiceProtocolVersion) {
    conn.send(error_frame("service protocol mismatch (daemon speaks " +
                          std::to_string(kServiceProtocolVersion) + ")"));
    return;
  }
  auto job = std::make_unique<Job>();
  try {
    job->tenant = msg.at("tenant").as_string();
    if (const cert::Json* priority = msg.find("priority")) {
      job->priority = static_cast<int>(priority->as_int());
    }
    job->model_text = msg.at("model_text").as_string();
    job->specs = dist::specs_from_json(msg.at("properties"));
    job->options = dist::options_from_json(msg.at("options"));
    if (const cert::Json* threads = msg.find("threads")) {
      job->options.workers = static_cast<int>(threads->as_int());
    }
    // Validate the submission up front — parse the model and resolve every
    // property — so a bad job is an immediate error frame, not a queued
    // failure discovered minutes later.
    const ta::ThresholdAutomaton ta =
        ta::parse_ta(job->model_text).one_round_reduction();
    dist::resolve_properties(ta, job->specs);
    // Mirror check_property's normalization before fingerprinting, so a
    // certify submission and a certify CLI run share one cache identity.
    if (job->options.certify) job->options.incremental = true;
    job->properties = job->specs.size();
    job->key = job_key(checker::model_content_hash(ta), job->specs,
                       checker::options_fingerprint(job->options), d.options.job_workers);
  } catch (const Error& error) {
    conn.send(error_frame(std::string("bad submission: ") + error.what()));
    return;
  }

  cert::Json reply;
  {
    std::lock_guard<std::mutex> lock(d.mutex);
    if (d.closing) {
      conn.send(error_frame("daemon is shutting down"));
      return;
    }
    job->id = d.next_id++;
    job->submitted_seconds = d.clock.seconds();
    ++d.stats.jobs_submitted;
    if (const ResultCache::Entry* hit = d.cache.find(job->key)) {
      // Content-addressed hit: the job is born terminal and serves the
      // original run's bytes with zero schemas solved. Both events go to
      // the log so a restarted daemon re-serves it the same way.
      job->state = JobState::kDone;
      job->cached = true;
      job->code = hit->code;
      job->response = hit->response;
      job->started_seconds = job->submitted_seconds;
      job->finished_seconds = job->submitted_seconds;
      ++d.stats.cache_hits;
      ++d.stats.jobs_done;
      Job* stored = d.queue.enqueue(std::move(job));
      d.events->append(submit_event(*stored));
      d.events->append(done_event(*stored));
      reply = cert::Json::Object{{"type", "submitted"},
                                 {"job", stored->id},
                                 {"state", to_string(stored->state)},
                                 {"cached", true}};
    } else {
      const std::string rejection =
          d.queue.admit(job->tenant, job->options.enumeration.max_schemas);
      if (!rejection.empty()) {
        conn.send(error_frame(rejection));
        return;
      }
      Job* stored = d.queue.enqueue(std::move(job));
      d.events->append(submit_event(*stored));
      d.job_event.notify_all();
      reply = cert::Json::Object{{"type", "submitted"},
                                 {"job", stored->id},
                                 {"state", to_string(stored->state)},
                                 {"cached", false}};
    }
  }
  conn.send(reply);
}

/// One job's status row / progress frame body. Caller holds the lock (the
/// counters themselves are atomics, but state/stamps are lock-guarded).
cert::Json job_status(const Daemon& d, const Job& job) {
  const double now = d.clock.seconds();
  double elapsed = 0.0;
  if (job.state == JobState::kRunning) {
    elapsed = now - job.started_seconds;
  } else if (job.state != JobState::kQueued) {
    elapsed = job.finished_seconds - job.started_seconds;
  }
  const std::int64_t done_properties =
      job.progress.properties_done.load(std::memory_order_relaxed);
  double eta = -1.0;
  if (job.state == JobState::kRunning && done_properties > 0 &&
      job.properties > static_cast<std::size_t>(done_properties)) {
    eta = elapsed / static_cast<double>(done_properties) *
          static_cast<double>(job.properties - static_cast<std::size_t>(done_properties));
  } else if (job.state != JobState::kQueued && job.state != JobState::kRunning) {
    eta = 0.0;
  }
  cert::Json row = cert::Json::Object{
      {"job", job.id},
      {"tenant", job.tenant},
      {"state", to_string(job.state)},
      {"priority", job.priority},
      {"cached", job.cached},
      {"properties", static_cast<std::int64_t>(job.properties)},
      {"properties_done", done_properties},
      {"enumerated", job.progress.enumerated.load(std::memory_order_relaxed)},
      {"solved", job.progress.solved.load(std::memory_order_relaxed)},
      {"pruned", job.progress.pruned.load(std::memory_order_relaxed)},
      {"cut", job.progress.cut.load(std::memory_order_relaxed)},
      {"unknown", job.progress.unknown.load(std::memory_order_relaxed)},
      {"resumed", job.progress.resumed.load(std::memory_order_relaxed)},
      {"workers", job.progress.workers.load(std::memory_order_relaxed)},
      {"elapsed", elapsed},
      {"eta_seconds", eta}};
  if (job.state == JobState::kDone) row.set("code", job.code);
  if (job.state == JobState::kFailed) row.set("error", job.error);
  return row;
}

void handle_status(Daemon& d, dist::Conn& conn, const cert::Json& msg) {
  cert::Json reply;
  {
    std::lock_guard<std::mutex> lock(d.mutex);
    cert::Json::Array rows;
    const cert::Json* filter = msg.find("job");
    for (const auto& job : d.queue.jobs()) {
      if (filter != nullptr && job->id != filter->as_int()) continue;
      rows.push_back(job_status(d, *job));
    }
    reply = cert::Json::Object{
        {"type", "status"},
        {"now", d.clock.seconds()},
        {"running", d.queue.running()},
        {"queued", d.queue.queued()},
        {"cache", cert::Json::Object{{"entries", d.cache.entries()},
                                     {"bytes", d.cache.bytes()},
                                     {"hits", d.cache.hits()},
                                     {"misses", d.cache.misses()},
                                     {"evictions", d.cache.evictions()}}},
        {"jobs", std::move(rows)}};
  }
  conn.send(reply);
}

void handle_result(Daemon& d, dist::Conn& conn, const cert::Json& msg) {
  const cert::Json* id_field = msg.find("job");
  if (id_field == nullptr) {
    conn.send(error_frame("result: missing job id"));
    return;
  }
  const std::int64_t id = id_field->as_int();
  const cert::Json* wait_field = msg.find("wait");
  const bool wait = wait_field != nullptr && wait_field->as_bool();
  for (;;) {
    cert::Json frame;
    bool terminal = false;
    {
      std::unique_lock<std::mutex> lock(d.mutex);
      Job* job = d.queue.find(id);
      if (job == nullptr) {
        frame = error_frame("unknown job " + std::to_string(id));
        terminal = true;
      } else if (job->state == JobState::kDone) {
        frame = cert::Json::Object{{"type", "result"},
                                   {"job", job->id},
                                   {"state", to_string(job->state)},
                                   {"code", job->code},
                                   {"cached", job->cached},
                                   {"response", job->response}};
        terminal = true;
      } else if (job->state == JobState::kFailed || job->state == JobState::kCancelled) {
        frame = cert::Json::Object{{"type", "result"},
                                   {"job", job->id},
                                   {"state", to_string(job->state)},
                                   {"code", job->state == JobState::kFailed ? 2 : 3},
                                   {"cached", false},
                                   {"response", job->error}};
        terminal = true;
      } else if (d.closing) {
        frame = error_frame("daemon is shutting down");
        terminal = true;
      } else {
        frame = job_status(d, *job);
        // Rewrite the row as a progress frame (same fields, typed).
        frame.set("type", "progress");  // appended; readers use find()
        if (wait) {
          // Throttle the stream: wake on terminal transitions, else tick.
          d.progress_event.wait_for(lock, std::chrono::milliseconds(200));
        }
      }
    }
    if (!conn.send(frame)) return;  // client went away; stop streaming
    if (terminal || !wait) return;
  }
}

void handle_cancel(Daemon& d, dist::Conn& conn, const cert::Json& msg) {
  const cert::Json* id_field = msg.find("job");
  if (id_field == nullptr) {
    conn.send(error_frame("cancel: missing job id"));
    return;
  }
  cert::Json reply;
  {
    std::lock_guard<std::mutex> lock(d.mutex);
    Job* job = d.queue.find(id_field->as_int());
    if (job == nullptr) {
      conn.send(error_frame("unknown job " + id_field->to_string()));
      return;
    }
    if (job->state == JobState::kQueued) {
      job->state = JobState::kCancelled;
      job->finished_seconds = d.clock.seconds();
      ++d.stats.jobs_cancelled;
      d.events->append(cert::Json::Object{{"event", "cancelled"}, {"job", job->id}});
      d.progress_event.notify_all();
    } else if (job->state == JobState::kRunning && !job->cancel.load()) {
      // Durable intent first, then the flag: if the daemon dies between the
      // two, the restart honors the cancellation instead of re-running.
      d.events->append(cert::Json::Object{{"event", "cancelled"}, {"job", job->id}});
      job->cancel.store(true);
    }
    // Terminal states: cancel is an idempotent no-op.
    reply = cert::Json::Object{{"type", "ok"}, {"job", job->id},
                               {"state", to_string(job->state)}};
  }
  conn.send(reply);
}

void handle_connection(Daemon& d, int fd) {
  dist::Conn conn(fd);
  cert::Json msg;
  for (;;) {
    const dist::FrameStatus status = conn.recv(&msg, 500);
    if (status == dist::FrameStatus::kTimeout) {
      std::lock_guard<std::mutex> lock(d.mutex);
      if (d.closing) return;
      continue;
    }
    if (status != dist::FrameStatus::kOk) return;
    const cert::Json* type = msg.find("type");
    if (type == nullptr) {
      conn.send(error_frame("frame has no type"));
      return;
    }
    const std::string& kind = type->as_string();
    if (kind == "submit") {
      handle_submit(d, conn, msg);
    } else if (kind == "status") {
      handle_status(d, conn, msg);
    } else if (kind == "result") {
      handle_result(d, conn, msg);
    } else if (kind == "cancel") {
      handle_cancel(d, conn, msg);
    } else {
      conn.send(error_frame("unknown request type '" + kind + "'"));
      return;
    }
  }
}

}  // namespace

std::string job_key(const std::string& model_hash, const std::vector<dist::PropertySpec>& specs,
                    const std::string& options_fingerprint, int job_workers) {
  std::string key = "model=" + model_hash + "|props=";
  key += dist::specs_to_json(specs).to_string();
  key += "|opts=" + options_fingerprint;
  key += "|job_workers=" + std::to_string(job_workers >= 2 ? job_workers : 0);
  return key;
}

int run_daemon_fd(int listen_fd, const DaemonOptions& options, std::ostream& log,
                  DaemonStats* stats) {
  if (options.state_dir.empty()) {
    ::close(listen_fd);
    throw InvalidArgument("daemon: a state directory is required");
  }
  ::mkdir(options.state_dir.c_str(), 0755);  // EEXIST is fine
  {
    struct stat st = {};
    if (::stat(options.state_dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
      ::close(listen_fd);
      throw Error("daemon: cannot create state directory: " + options.state_dir);
    }
  }

  Daemon daemon(options, log);
  const std::string log_path = options.state_dir + "/queue.jsonl";
  replay(daemon, log_path);  // read the old log before opening for append
  daemon.events = std::make_unique<EventLog>(log_path);
  // Flushed eagerly: the daemon may never exit cleanly (kill -9 is part of
  // its contract), and operators tail this line to confirm a replay.
  log << "daemon: " << daemon.queue.jobs().size() << " jobs replayed ("
      << daemon.stats.jobs_recovered << " re-queued), cache " << daemon.cache.entries()
      << " entries / " << daemon.cache.bytes() << " bytes" << std::endl;

  std::vector<std::thread> executors;
  const int executor_count = options.limits.max_running > 0 ? options.limits.max_running : 1;
  executors.reserve(static_cast<std::size_t>(executor_count));
  for (int i = 0; i < executor_count; ++i) {
    executors.emplace_back([&daemon] { executor_loop(daemon); });
  }
  {
    std::lock_guard<std::mutex> lock(daemon.mutex);
    daemon.job_event.notify_all();  // replayed queue may be dispatchable
  }

  std::vector<std::thread> handlers;
  for (;;) {
    if (options.stop != nullptr && options.stop->load()) break;
    struct pollfd pfd = {};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    handlers.emplace_back([&daemon, fd] { handle_connection(daemon, fd); });
  }

  // Graceful shutdown: stop dispatching, interrupt running jobs at their
  // next cancellation point, and let every thread drain. Queued jobs (and
  // the interrupted ones, which get no terminal event) stay in the event
  // log and re-run on the next start.
  {
    std::lock_guard<std::mutex> lock(daemon.mutex);
    daemon.closing = true;
    for (const auto& job : daemon.queue.jobs()) {
      if (job->state == JobState::kRunning) job->cancel.store(true);
    }
    daemon.job_event.notify_all();
    daemon.progress_event.notify_all();
  }
  for (std::thread& thread : executors) thread.join();
  for (std::thread& thread : handlers) thread.join();
  ::close(listen_fd);

  log << "daemon: shut down (" << daemon.stats.jobs_submitted << " submitted, "
      << daemon.stats.jobs_done << " done, " << daemon.stats.cache_hits << " cache hits, "
      << daemon.stats.jobs_failed << " failed, " << daemon.stats.jobs_cancelled
      << " cancelled)\n";
  if (stats != nullptr) *stats = daemon.stats;
  return 0;
}

int run_daemon(const std::string& listen_address, const DaemonOptions& options,
               std::ostream& log, DaemonStats* stats) {
  const dist::Address address = dist::parse_address(listen_address);
  const int listen_fd = dist::listen_on(address);
  log << "daemon: listening on " << listen_address << "\n";
  const int code = run_daemon_fd(listen_fd, options, log, stats);
  if (address.unix_domain) ::unlink(address.path.c_str());
  return code;
}

}  // namespace hv::service
