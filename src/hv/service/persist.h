// Crash-safe persistence of the service daemon's job queue.
//
// The daemon records every queue transition in an append-only JSONL event
// log under its state directory, fsync'd per event (events are orders of
// magnitude rarer than schema verdicts, so unlike the schema journal there
// is no batching — a submission acknowledged to a client is durable).
// Replaying the log after a SIGKILL rebuilds the exact queue: jobs with a
// terminal event re-serve their recorded response (and re-seed the result
// cache); jobs without one go back to queued, and their per-job *schema*
// journal (the existing checker journal, one file per job) lets the re-run
// resume from close to the kill point instead of starting over.
//
// Events (one object per line, after a {"hv_service_log": 1, ...} header):
//   submit    {job, tenant, priority, model_text, properties[], options{},
//              threads, key}
//   done      {job, code, cached, response}
//   failed    {job, error}
//   cancelled {job}
// A torn trailing line — the kill-between-write-and-sync signature — is
// skipped on load, like the schema journal's loader.
#ifndef HV_SERVICE_PERSIST_H
#define HV_SERVICE_PERSIST_H

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "hv/cert/json.h"

namespace hv::service {

class EventLog {
 public:
  /// Opens `path` for append, writing the header line iff the file is new
  /// or empty. Throws hv::Error when the file cannot be opened.
  explicit EventLog(std::string path);
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one event line and makes it durable (fflush + fdatasync)
  /// before returning. Thread-safe.
  void append(const cert::Json& event);

  const std::string& path() const noexcept { return path_; }

  /// Loads every well-formed event of an existing log, skipping the header
  /// and a torn tail. Returns an empty vector for a missing file (a fresh
  /// daemon). Throws hv::Error on an unreadable file or a foreign header.
  static std::vector<cert::Json> load(const std::string& path);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

}  // namespace hv::service

#endif  // HV_SERVICE_PERSIST_H
