// Client side of the verification service: a thin frame-speaking wrapper
// used by `hvc submit`/`hvc status`/`hvc result`/`hvc cancel`, the service
// tests and the throughput bench. One Client is one connection; requests
// are synchronous (send one frame, read the reply), and result waits stream
// progress frames through a callback until the terminal result frame.
#ifndef HV_SERVICE_CLIENT_H
#define HV_SERVICE_CLIENT_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hv/cert/json.h"
#include "hv/checker/parameterized.h"
#include "hv/dist/protocol.h"

namespace hv::service {

/// One submission as the client assembles it. `options.workers` travels as
/// the extra "threads" field (the dist options vocabulary deliberately
/// omits it: there it means connected processes, here in-process threads).
struct SubmitRequest {
  std::string tenant;
  int priority = 0;
  std::string model_text;
  std::vector<dist::PropertySpec> specs;
  checker::CheckOptions options;
};

class Client {
 public:
  /// Connects to "unix:/path" or "tcp:host:port", retrying for up to
  /// `retry_seconds` (the daemon may still be binding). Throws hv::Error
  /// when no connection could be made.
  explicit Client(const std::string& address, double retry_seconds = 5.0);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one frame and returns the next reply frame. Throws hv::Error on
  /// any transport failure or timeout. An "error" reply is returned, not
  /// thrown — callers decide whether it is fatal.
  cert::Json request(const cert::Json& message, int timeout_ms = 60'000);

  /// Submits a job. Returns the "submitted" frame ({job, state, cached});
  /// throws hv::Error carrying the daemon's message on an error frame
  /// (quota rejection, bad model, protocol mismatch).
  cert::Json submit(const SubmitRequest& request);

  /// Queue/cache snapshot; `job` >= 0 restricts the jobs array to that id.
  cert::Json status(std::int64_t job = -1);

  /// Fetches a job's result. With `wait`, blocks until the job is terminal,
  /// invoking `on_progress` for every streamed progress frame; without it,
  /// returns immediately (a non-terminal job yields its progress frame).
  /// Error frames (unknown job, daemon shutdown) are returned as-is.
  cert::Json result(std::int64_t job, bool wait,
                    const std::function<void(const cert::Json&)>& on_progress = nullptr);

  /// Cancels a job (idempotent); returns the "ok" or "error" frame.
  cert::Json cancel(std::int64_t job);

 private:
  std::unique_ptr<dist::Conn> conn_;
};

}  // namespace hv::service

#endif  // HV_SERVICE_CLIENT_H
