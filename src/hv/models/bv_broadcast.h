// The binary value broadcast threshold automaton (Figure 2) and its LTL
// specification (Section 3.2): BV-Justification, BV-Obligation,
// BV-Uniformity and BV-Termination, each for both binary values.
#ifndef HV_MODELS_BV_BROADCAST_H
#define HV_MODELS_BV_BROADCAST_H

#include <string>
#include <vector>

#include "hv/spec/compile.h"
#include "hv/spec/query.h"
#include "hv/ta/automaton.h"

namespace hv::models {

/// Figure 2: 10 locations, 19 rules (12 guarded/updating + 7 self-loops),
/// 4 unique guards, parameters n, t, f with n > 3t && t >= f >= 0 and
/// n - f correct processes.
ta::ThresholdAutomaton bv_broadcast();

/// Negative control: the same automaton under the weakened resilience
/// n > 2t. Safety still holds (the -f slack never exceeds t), but
/// BV-Uniformity/Obligation break: with n = 2t+1 the correct processes
/// alone cannot push a counter to 2t+1, so some processes may never
/// deliver. Used by the counterexample example/benchmarks.
ta::ThresholdAutomaton bv_broadcast_weakened();

/// Justice for liveness checking, faithful to the paper's modelling: a rule
/// waiting for "t+1 distinct senders" is *guaranteed* to fire only once t+1
/// correct processes have sent (b >= t+1, without the -f Byzantine slack
/// that the guard itself enjoys), and similarly 2t+1 for delivery.
spec::CompileOptions bv_liveness_options(const ta::ThresholdAutomaton& ta);

/// The eight properties of Section 3.2 (four per value), compiled.
std::vector<spec::Property> bv_properties(const ta::ThresholdAutomaton& ta);

/// Table 1: which values a correct process has broadcast/delivered at each
/// location.
struct LocationSemantics {
  std::string location;
  std::string broadcast;
  std::string delivered;
};
std::vector<LocationSemantics> bv_location_semantics();

}  // namespace hv::models

#endif  // HV_MODELS_BV_BROADCAST_H
