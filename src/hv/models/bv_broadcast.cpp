#include "hv/models/bv_broadcast.h"

#include "hv/spec/ltl.h"
#include "hv/ta/parser.h"
#include "hv/util/error.h"

namespace hv::models {

namespace {

// The automaton in the textual format, matching Figure 2 rule for rule.
// Guards compare the number of (BV, <v, *>) messages sent by correct
// processes against the reception thresholds minus the f messages Byzantine
// processes may contribute.
constexpr const char* kBvBroadcastTemplate = R"(
ta BvBroadcast {
  parameters n, t, f;
  shared b0, b1;
  resilience n > RESILIENCE*t;
  resilience t >= f;
  resilience f >= 0;
  processes n - f;
  initial V0, V1;
  locations B0, B1, B01, C0, C1, CB0, CB1, C01;
  # initial broadcast of the input value (Fig. 1 line 2)
  rule r1: V0 -> B0 do b0 += 1;
  rule r2: V1 -> B1 do b1 += 1;
  # deliver own value after 2t+1 distinct receptions (lines 6-7)
  rule r3: B0 -> C0 when b0 >= 2*t + 1 - f;
  # echo the other value after t+1 distinct receptions (lines 4-5)
  rule r4: B0 -> B01 when b1 >= t + 1 - f do b1 += 1;
  rule r5: B1 -> B01 when b0 >= t + 1 - f do b0 += 1;
  rule r6: B1 -> C1 when b1 >= 2*t + 1 - f;
  # after delivering 0, a process may still echo and deliver 1 (and dually)
  rule r7: C0 -> CB0 when b1 >= t + 1 - f do b1 += 1;
  rule r8: B01 -> CB0 when b0 >= 2*t + 1 - f;
  rule r9: B01 -> CB1 when b1 >= 2*t + 1 - f;
  rule r10: C1 -> CB1 when b0 >= t + 1 - f do b0 += 1;
  rule r11: CB0 -> C01 when b1 >= 2*t + 1 - f;
  rule r12: CB1 -> C01 when b0 >= 2*t + 1 - f;
  selfloop B0;
  selfloop B1;
  selfloop C0;
  selfloop C1;
  selfloop CB0;
  selfloop CB1;
  selfloop C01;
}
)";

ta::ThresholdAutomaton instantiate(const std::string& resilience) {
  std::string text = kBvBroadcastTemplate;
  const std::string placeholder = "RESILIENCE";
  text.replace(text.find(placeholder), placeholder.size(), resilience);
  ta::MultiRoundTa parsed = ta::parse_ta(text);
  HV_REQUIRE(parsed.switches().empty());
  return parsed.one_round_reduction();
}

// Justice override for one rule: "source empty or fewer than `threshold`
// correct messages of the watched counter".
spec::StabilityOverride justice(const ta::ThresholdAutomaton& ta, const char* rule_name,
                                const std::string& condition) {
  spec::StabilityOverride override_entry;
  override_entry.rule = -1;
  for (ta::RuleId id = 0; id < ta.rule_count(); ++id) {
    if (ta.rule(id).name == rule_name) {
      override_entry.rule = id;
      break;
    }
  }
  HV_REQUIRE(override_entry.rule >= 0);
  override_entry.replacement =
      spec::predicate_to_cnf(spec::parse_ltl(ta, condition));
  return override_entry;
}

}  // namespace

ta::ThresholdAutomaton bv_broadcast() { return instantiate("3"); }

ta::ThresholdAutomaton bv_broadcast_weakened() { return instantiate("2"); }

spec::CompileOptions bv_liveness_options(const ta::ThresholdAutomaton& ta) {
  spec::CompileOptions options;
  // Echo rules (guard b >= t+1-f) are guaranteed once t+1 *correct*
  // processes have sent; delivery rules (guard b >= 2t+1-f) once 2t+1 have.
  options.overrides.push_back(justice(ta, "r3", "locB0 == 0 || b0 <= 2*t"));
  options.overrides.push_back(justice(ta, "r4", "locB0 == 0 || b1 <= t"));
  options.overrides.push_back(justice(ta, "r5", "locB1 == 0 || b0 <= t"));
  options.overrides.push_back(justice(ta, "r6", "locB1 == 0 || b1 <= 2*t"));
  options.overrides.push_back(justice(ta, "r7", "locC0 == 0 || b1 <= t"));
  options.overrides.push_back(justice(ta, "r8", "locB01 == 0 || b0 <= 2*t"));
  options.overrides.push_back(justice(ta, "r9", "locB01 == 0 || b1 <= 2*t"));
  options.overrides.push_back(justice(ta, "r10", "locC1 == 0 || b0 <= t"));
  options.overrides.push_back(justice(ta, "r11", "locCB0 == 0 || b1 <= 2*t"));
  options.overrides.push_back(justice(ta, "r12", "locCB1 == 0 || b0 <= 2*t"));
  return options;
}

std::vector<spec::Property> bv_properties(const ta::ThresholdAutomaton& ta) {
  const spec::CompileOptions liveness = bv_liveness_options(ta);
  std::vector<spec::Property> properties;

  // (BV-Just_v): if v was not proposed by a correct process, no correct
  // process ever delivers v.
  properties.push_back(spec::compile(
      ta, "BV-Just0", "locV0 == 0 -> [](locC0 == 0 && locCB0 == 0 && locC01 == 0)"));
  properties.push_back(spec::compile(
      ta, "BV-Just1", "locV1 == 0 -> [](locC1 == 0 && locCB1 == 0 && locC01 == 0)"));

  // (BV-Obl_v): if t+1 correct processes broadcast v, every correct process
  // eventually delivers v (leaves the "v not delivered" locations Locs_v).
  properties.push_back(spec::compile(
      ta, "BV-Obl0",
      "[](b0 >= t + 1 -> <>(locV0 == 0 && locV1 == 0 && locB0 == 0 && locB1 == 0 && "
      "locB01 == 0 && locC1 == 0 && locCB1 == 0))",
      liveness));
  properties.push_back(spec::compile(
      ta, "BV-Obl1",
      "[](b1 >= t + 1 -> <>(locV0 == 0 && locV1 == 0 && locB0 == 0 && locB1 == 0 && "
      "locB01 == 0 && locC0 == 0 && locCB0 == 0))",
      liveness));

  // (BV-Unif_v): if some correct process delivers v, all eventually do.
  properties.push_back(spec::compile(
      ta, "BV-Unif0",
      "<>(locC0 != 0 || locCB0 != 0 || locC01 != 0) -> "
      "<>(locV0 == 0 && locV1 == 0 && locB0 == 0 && locB1 == 0 && locB01 == 0 && "
      "locC1 == 0 && locCB1 == 0)",
      liveness));
  properties.push_back(spec::compile(
      ta, "BV-Unif1",
      "<>(locC1 != 0 || locCB1 != 0 || locC01 != 0) -> "
      "<>(locV0 == 0 && locV1 == 0 && locB0 == 0 && locB1 == 0 && locB01 == 0 && "
      "locC0 == 0 && locCB0 == 0)",
      liveness));

  // (BV-Term): eventually every correct process has delivered something.
  properties.push_back(spec::compile(
      ta, "BV-Term",
      "<>(locV0 == 0 && locV1 == 0 && locB0 == 0 && locB1 == 0 && locB01 == 0)",
      liveness));

  return properties;
}

std::vector<LocationSemantics> bv_location_semantics() {
  return {
      {"V0", "/", "/"},      {"V1", "/", "/"},      {"B0", "0", "/"},
      {"B1", "1", "/"},      {"B01", "0,1", "/"},   {"C0", "0", "0"},
      {"CB0", "0,1", "0"},   {"C1", "1", "1"},      {"CB1", "0,1", "1"},
      {"C01", "0,1", "0,1"},
  };
}

}  // namespace hv::models
