// The simplified threshold automaton of the DBFT Byzantine consensus
// (Figure 4) and its ByMC specification (Appendix F).
//
// One superround concatenates an odd round (decide 1) and an even round
// (decide 0). The inner bv-broadcast is replaced by the gadget locations
// M/M0/M1/M01: the shared counters bvb0/bvb1 stand for "some correct
// process bv-broadcast v", and the proven BV properties justify both the
// gadget's transitions and the justice assumptions used for liveness.
// Primed (second-round) names carry an "x" suffix exactly like Appendix F
// (locM0x, aux0x, ...), so the specification strings below are the
// appendix's formulas nearly verbatim.
#ifndef HV_MODELS_SIMPLIFIED_CONSENSUS_H
#define HV_MODELS_SIMPLIFIED_CONSENSUS_H

#include <vector>

#include "hv/spec/compile.h"
#include "hv/spec/query.h"
#include "hv/ta/automaton.h"

namespace hv::models {

/// Figure 4 with the round-switch edges (dotted in the paper): 16 locations,
/// 37 rules (23 guarded/updating + 14 self-loops), 10 unique guards.
ta::MultiRoundTa simplified_consensus();

/// The one-round reduction checked by ByMC (Appendix A).
ta::ThresholdAutomaton simplified_consensus_one_round();

/// Negative control with resilience weakened to n > 2t: agreement breaks
/// (the paper reports generating such an Inv1_0 counterexample in ~4s).
ta::ThresholdAutomaton simplified_consensus_weakened_one_round();

/// All properties checked in Table 2 and used by Theorem 6:
/// Inv1_v, Inv2_v (safety; imply Agreement and Validity), Dec_v, Good_v and
/// SRoundTerm (liveness ingredients of Termination).
std::vector<spec::Property> simplified_properties(const ta::ThresholdAutomaton& ta);

/// The five Table 2 rows for this automaton: Inv1_0, Inv2_0, SRoundTerm,
/// Good_0, Dec_0.
std::vector<spec::Property> simplified_table2_properties(const ta::ThresholdAutomaton& ta);

}  // namespace hv::models

#endif  // HV_MODELS_SIMPLIFIED_CONSENSUS_H
