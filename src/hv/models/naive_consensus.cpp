#include "hv/models/naive_consensus.h"

#include <algorithm>

#include "hv/spec/compile.h"
#include "hv/ta/parser.h"
#include "hv/util/error.h"

namespace hv::models {

namespace {

// Figure 3 / Table 3. The embedded bv-broadcast occupies V*/B*/C* and the
// consensus decision logic the E*/D* locations; "x" suffixes the second
// (even) round, whose decision targets are swapped by round parity. The V'
// locations of the figure are merged into r20-r22 (which perform the second
// round's initial broadcast), giving the 24-location encoding of Table 2.
constexpr const char* kNaiveText = R"(
ta NaiveConsensus {
  parameters n, t, f;
  shared b0, b1, a0, a1, b0x, b1x, a0x, a1x;
  resilience n > 3*t;
  resilience t >= f;
  resilience f >= 0;
  processes n - f;
  initial V0, V1;
  locations B0, B1, B01, C0, C1, CB0, CB1, C01, E0, E1, D1,
            B0x, B1x, B01x, C0x, C1x, CB0x, CB1x, C01x, E0x, E1x, D0;

  # --- odd round: embedded bv-broadcast (cf. Fig. 2), aux on delivery ------
  rule r1: V0 -> B0 do b0 += 1;
  rule r2: V1 -> B1 do b1 += 1;
  rule r3: B0 -> C0 when b0 >= 2*t + 1 - f do a0 += 1;
  rule r4: B0 -> B01 when b1 >= t + 1 - f do b1 += 1;
  rule r5: B1 -> B01 when b0 >= t + 1 - f do b0 += 1;
  rule r6: B1 -> C1 when b1 >= 2*t + 1 - f do a1 += 1;
  rule r7: C1 -> D1 when a1 >= n - t - f;
  rule r8: C0 -> CB0 when b1 >= t + 1 - f do b1 += 1;
  rule r9: B01 -> CB1 when b1 >= 2*t + 1 - f do a1 += 1;
  rule r10: B01 -> CB0 when b0 >= 2*t + 1 - f do a0 += 1;
  rule r11: C1 -> CB1 when b0 >= t + 1 - f do b0 += 1;
  rule r12: CB0 -> C01 when b1 >= 2*t + 1 - f;
  rule r13: CB1 -> C01 when b0 >= 2*t + 1 - f;
  rule r14: C0 -> E0 when a0 >= n - t - f;
  rule r15: CB0 -> E0 when a0 >= n - t - f;
  rule r16: C01 -> E0 when a0 >= n - t - f;
  rule r17: C01 -> E1 when a0 + a1 >= n - t - f;
  rule r18: CB1 -> D1 when a1 >= n - t - f;
  rule r19: C01 -> D1 when a1 >= n - t - f;

  # --- round switch (odd -> even), absorbing the V' locations --------------
  rule r20: E0 -> B0x do b0x += 1;
  rule r21: E1 -> B1x do b1x += 1;
  rule r22: D1 -> B1x do b1x += 1;

  # --- even round: decision targets swapped (qualifiers == {0} decides) ----
  rule r3x: B0x -> C0x when b0x >= 2*t + 1 - f do a0x += 1;
  rule r4x: B0x -> B01x when b1x >= t + 1 - f do b1x += 1;
  rule r5x: B1x -> B01x when b0x >= t + 1 - f do b0x += 1;
  rule r6x: B1x -> C1x when b1x >= 2*t + 1 - f do a1x += 1;
  rule r7x: C1x -> E1x when a1x >= n - t - f;
  rule r8x: C0x -> CB0x when b1x >= t + 1 - f do b1x += 1;
  rule r9x: B01x -> CB1x when b1x >= 2*t + 1 - f do a1x += 1;
  rule r10x: B01x -> CB0x when b0x >= 2*t + 1 - f do a0x += 1;
  rule r11x: C1x -> CB1x when b0x >= t + 1 - f do b0x += 1;
  rule r12x: CB0x -> C01x when b1x >= 2*t + 1 - f;
  rule r13x: CB1x -> C01x when b0x >= 2*t + 1 - f;
  rule r14x: C0x -> D0 when a0x >= n - t - f;
  rule r15x: CB0x -> D0 when a0x >= n - t - f;
  rule r16x: C01x -> D0 when a0x >= n - t - f;
  rule r17x: C01x -> E0x when a0x + a1x >= n - t - f;
  rule r18x: CB1x -> E1x when a1x >= n - t - f;
  rule r19x: C01x -> E1x when a1x >= n - t - f;

  selfloop B01;
  selfloop C01;
  selfloop C01x;
  selfloop D0;
  selfloop E0x;
  selfloop E1x;

  switch D0 -> V0;
  switch E0x -> V0;
  switch E1x -> V1;
}
)";

// The justice premise for SRoundTerm on the composite automaton, derived
// like Appendix F: guaranteed thresholds use only correct messages (t+1,
// 2t+1, n-t — no -f slack), and the bv-broadcast properties appear as
// assumptions exactly like the gadget conditions of the simplified TA:
//   * BV-Obligation: once t+1 correct processes broadcast v, every
//     process still waiting to deliver v eventually does (locations B0,
//     B01, CB1 wait for 0; B1, B01, CB0 wait for 1; C0/C1 drain via their
//     echo clauses);
//   * BV-Uniformity: once some process delivers v first (witnessed by the
//     aux counter a_v), every process waiting for v eventually delivers it.
// Without these, the composite automaton admits genuine starvation — the
// "porosity" of Section 4.2: a process that advances to the next round
// stops echoing in the old one, so plain reliable communication is not
// enough to drain the waiters.
constexpr const char* kNaiveSRoundTermination = R"(
<>[](
  (locV0 == 0) && (locV1 == 0) &&
  (locB0 == 0 || b0 < 2*T + 1) && (locB0 == 0 || b1 < T + 1) &&
  (locB1 == 0 || b0 < T + 1) && (locB1 == 0 || b1 < 2*T + 1) &&
  (locC1 == 0 || a1 < N - T) && (locC0 == 0 || b1 < T + 1) &&
  (locB01 == 0 || b1 < 2*T + 1) && (locB01 == 0 || b0 < 2*T + 1) &&
  (locC1 == 0 || b0 < T + 1) &&
  (locCB0 == 0 || b1 < 2*T + 1) && (locCB1 == 0 || b0 < 2*T + 1) &&
  (locC0 == 0 || a0 < N - T) && (locCB0 == 0 || a0 < N - T) &&
  (locC01 == 0 || a0 < N - T) && (locC01 == 0 || a0 + a1 < N - T) &&
  (locCB1 == 0 || a1 < N - T) && (locC01 == 0 || a1 < N - T) &&

  # BV-Obligation for the embedded broadcast
  (locB0 == 0 || b0 < T + 1) && (locB01 == 0 || b0 < T + 1) &&
  (locCB1 == 0 || b0 < T + 1) &&
  (locB1 == 0 || b1 < T + 1) && (locB01 == 0 || b1 < T + 1) &&
  (locCB0 == 0 || b1 < T + 1) &&
  # BV-Uniformity for the embedded broadcast
  (locB0 == 0 || a0 == 0) && (locB01 == 0 || a0 == 0) &&
  (locCB1 == 0 || a0 == 0) &&
  (locB1 == 0 || a1 == 0) && (locB01 == 0 || a1 == 0) &&
  (locCB0 == 0 || a1 == 0) &&

  (locE0 == 0) && (locE1 == 0) && (locD1 == 0) &&
  (locB0x == 0 || b0x < 2*T + 1) && (locB0x == 0 || b1x < T + 1) &&
  (locB1x == 0 || b0x < T + 1) && (locB1x == 0 || b1x < 2*T + 1) &&
  (locC1x == 0 || a1x < N - T) && (locC0x == 0 || b1x < T + 1) &&
  (locB01x == 0 || b1x < 2*T + 1) && (locB01x == 0 || b0x < 2*T + 1) &&
  (locC1x == 0 || b0x < T + 1) &&
  (locCB0x == 0 || b1x < 2*T + 1) && (locCB1x == 0 || b0x < 2*T + 1) &&
  (locC0x == 0 || a0x < N - T) && (locCB0x == 0 || a0x < N - T) &&
  (locC01x == 0 || a0x < N - T) && (locC01x == 0 || a0x + a1x < N - T) &&
  (locCB1x == 0 || a1x < N - T) && (locC01x == 0 || a1x < N - T) &&

  (locB0x == 0 || b0x < T + 1) && (locB01x == 0 || b0x < T + 1) &&
  (locCB1x == 0 || b0x < T + 1) &&
  (locB1x == 0 || b1x < T + 1) && (locB01x == 0 || b1x < T + 1) &&
  (locCB0x == 0 || b1x < T + 1) &&
  (locB0x == 0 || a0x == 0) && (locB01x == 0 || a0x == 0) &&
  (locCB1x == 0 || a0x == 0) &&
  (locB1x == 0 || a1x == 0) && (locB01x == 0 || a1x == 0) &&
  (locCB0x == 0 || a1x == 0)
)
->
<>(
  locV0 == 0 && locV1 == 0 &&
  locB0 == 0 && locB1 == 0 && locB01 == 0 &&
  locC0 == 0 && locC1 == 0 && locCB0 == 0 && locCB1 == 0 && locC01 == 0 &&
  locE0 == 0 && locE1 == 0 && locD1 == 0 &&
  locB0x == 0 && locB1x == 0 && locB01x == 0 &&
  locC0x == 0 && locC1x == 0 && locCB0x == 0 && locCB1x == 0 && locC01x == 0
)
)";

}  // namespace

ta::MultiRoundTa naive_consensus() { return ta::parse_ta(kNaiveText); }

ta::ThresholdAutomaton naive_consensus_one_round() {
  return naive_consensus().one_round_reduction();
}

std::vector<spec::Property> naive_table2_properties(const ta::ThresholdAutomaton& ta) {
  std::vector<spec::Property> properties;
  properties.push_back(
      spec::compile(ta, "Inv1_0", "<>(locD0 != 0) -> [](locD1 == 0 && locE1x == 0)"));
  properties.push_back(
      spec::compile(ta, "Inv2_0", "[](locV0 == 0) -> [](locD0 == 0 && locE0x == 0)"));
  properties.push_back(spec::compile(ta, "SRoundTerm", kNaiveSRoundTermination));
  return properties;
}

std::vector<RuleRow> naive_rule_table(const ta::ThresholdAutomaton& ta) {
  // Table 3 covers the first half of the automaton (rules r1..r22), with
  // rules sharing a guard and update grouped into one row.
  std::vector<RuleRow> rows;
  for (ta::RuleId id = 0; id < ta.rule_count(); ++id) {
    const ta::Rule& rule = ta.rule(id);
    if (rule.is_self_loop() || rule.name.back() == 'x') continue;
    const std::string guard = ta.guard_to_string(rule.guard);
    std::string update = "-";
    if (!rule.update.empty()) {
      update.clear();
      for (const auto& [var, amount] : rule.update.increments) {
        if (!update.empty()) update += ", ";
        update += ta.variable_name(var) + (amount == BigInt(1) ? "++" : "+=" + amount.to_string());
      }
    }
    const auto existing = std::find_if(rows.begin(), rows.end(), [&](const RuleRow& row) {
      return row.guard == guard && row.update == update;
    });
    if (existing != rows.end()) {
      existing->rules += ", " + rule.name;
    } else {
      rows.push_back({rule.name, guard, update});
    }
  }
  return rows;
}

}  // namespace hv::models
