// The Srikanth-Toueg-style asynchronous reliable broadcast threshold
// automaton — the classic benchmark of the threshold-automata literature
// (John et al. SPIN'13, Konnov et al. POPL'17) and a building block the
// paper's related work discusses. Included both as a second worked model
// for library users and as an independent regression target for the
// checker.
//
// One broadcast instance: a correct process either received the
// broadcaster's INIT (location V1) or not (V0); it sends an <echo> when it
// has the INIT or t+1 echoes (the Byzantine -f slack applies), and accepts
// at 2t+1 echoes.
#ifndef HV_MODELS_ST_BROADCAST_H
#define HV_MODELS_ST_BROADCAST_H

#include <vector>

#include "hv/spec/compile.h"
#include "hv/spec/query.h"
#include "hv/ta/automaton.h"

namespace hv::models {

/// 4 locations (V0, V1, SE, AC), 2 unique guards, parameters n, t, f with
/// n > 3t && t >= f >= 0.
ta::ThresholdAutomaton st_broadcast();

/// Justice for liveness: echoes are guaranteed at t+1 *correct* echoes and
/// acceptance at 2t+1 (no -f slack).
spec::CompileOptions st_liveness_options(const ta::ThresholdAutomaton& ta);

/// Unforgeability, Correctness and Relay, compiled.
std::vector<spec::Property> st_properties(const ta::ThresholdAutomaton& ta);

}  // namespace hv::models

#endif  // HV_MODELS_ST_BROADCAST_H
