#include "hv/models/st_broadcast.h"

#include "hv/spec/ltl.h"
#include "hv/ta/parser.h"
#include "hv/util/error.h"

namespace hv::models {

namespace {

constexpr const char* kStBroadcastText = R"(
ta StBroadcast {
  parameters n, t, f;
  shared nsnt;
  resilience n > 3*t;
  resilience t >= f;
  resilience f >= 0;
  processes n - f;
  initial V0, V1;
  locations SE, AC;
  # received the broadcaster's INIT: send <echo>
  rule r1: V1 -> SE do nsnt += 1;
  # t+1 distinct echoes (f may be Byzantine): echo too
  rule r2: V0 -> SE when nsnt >= t + 1 - f do nsnt += 1;
  # 2t+1 distinct echoes: accept
  rule r3: SE -> AC when nsnt >= 2*t + 1 - f;
  selfloop V0;
  selfloop SE;
  selfloop AC;
}
)";

spec::StabilityOverride justice(const ta::ThresholdAutomaton& ta, const char* rule_name,
                                const std::string& condition) {
  spec::StabilityOverride override_entry;
  override_entry.rule = -1;
  for (ta::RuleId id = 0; id < ta.rule_count(); ++id) {
    if (ta.rule(id).name == rule_name) override_entry.rule = id;
  }
  HV_REQUIRE(override_entry.rule >= 0);
  override_entry.replacement = spec::predicate_to_cnf(spec::parse_ltl(ta, condition));
  return override_entry;
}

}  // namespace

ta::ThresholdAutomaton st_broadcast() {
  return ta::parse_ta(kStBroadcastText).one_round_reduction();
}

spec::CompileOptions st_liveness_options(const ta::ThresholdAutomaton& ta) {
  spec::CompileOptions options;
  options.overrides.push_back(justice(ta, "r2", "locV0 == 0 || nsnt <= t"));
  options.overrides.push_back(justice(ta, "r3", "locSE == 0 || nsnt <= 2*t"));
  return options;
}

std::vector<spec::Property> st_properties(const ta::ThresholdAutomaton& ta) {
  const spec::CompileOptions liveness = st_liveness_options(ta);
  std::vector<spec::Property> properties;
  // Unforgeability: if no correct process received the INIT, none accepts.
  properties.push_back(spec::compile(ta, "Unforg", "locV1 == 0 -> [](locAC == 0)"));
  // Correctness: if every correct process received the INIT, every correct
  // process eventually accepts.
  properties.push_back(spec::compile(
      ta, "Corr", "locV0 == 0 -> <>(locV0 == 0 && locV1 == 0 && locSE == 0)", liveness));
  // Relay: if some correct process accepts, every correct process does.
  properties.push_back(spec::compile(
      ta, "Relay", "<>(locAC != 0) -> <>(locV0 == 0 && locV1 == 0 && locSE == 0)", liveness));
  return properties;
}

}  // namespace hv::models
