// The naive (composite) threshold automaton of the DBFT Byzantine consensus
// (Figure 3, rules in Table 3/Appendix D): the bv-broadcast automaton is
// embedded twice, once per round of the superround, rather than replaced by
// the proven gadget. This is the automaton ByMC could *not* verify within
// days (Table 2) — we reproduce the blow-up with a schema budget.
#ifndef HV_MODELS_NAIVE_CONSENSUS_H
#define HV_MODELS_NAIVE_CONSENSUS_H

#include <string>
#include <vector>

#include "hv/spec/query.h"
#include "hv/ta/automaton.h"

namespace hv::models {

/// Figure 3 with round-switch edges: 24 locations, 45 rules (39 guarded/
/// updating + 6 self-loops), 14 unique guards.
ta::MultiRoundTa naive_consensus();

/// The one-round reduction (what the checker consumes).
ta::ThresholdAutomaton naive_consensus_one_round();

/// The three Table 2 rows attempted on this automaton: Inv1_0, Inv2_0 and
/// SRoundTerm.
std::vector<spec::Property> naive_table2_properties(const ta::ThresholdAutomaton& ta);

/// Table 3: rule name, guard and update, rendered from the model itself.
struct RuleRow {
  std::string rules;
  std::string guard;
  std::string update;
};
std::vector<RuleRow> naive_rule_table(const ta::ThresholdAutomaton& ta);

}  // namespace hv::models

#endif  // HV_MODELS_NAIVE_CONSENSUS_H
