#include "hv/models/simplified_consensus.h"

#include <string>

#include "hv/ta/parser.h"
#include "hv/util/error.h"

namespace hv::models {

namespace {

// Figure 4, with second-round locations/counters suffixed "x" (Appendix F
// naming). The V'-locations drawn in the figure are merged into the
// round-switch rules s12-s14 (which immediately perform the next round's
// bv-broadcast), matching the 16-location encoding of Appendix F.
constexpr const char* kSimplifiedTemplate = R"(
ta SimplifiedConsensus {
  parameters n, t, f;
  shared bvb0, bvb1, aux0, aux1, bvb0x, bvb1x, aux0x, aux1x;
  resilience n > RESILIENCE*t;
  resilience t >= f;
  resilience f >= 0;
  processes n - f;
  initial V0, V1;
  locations M, M0, M1, M01, E0, E1, D1, Mx, M0x, M1x, M01x, D0, E0x, E1x;

  # --- odd round 2R-1 (parity 1: qualifiers == {1} decides) ---------------
  # bv-broadcast the estimate (Alg. 1 line 6)
  rule s1: V0 -> M do bvb0 += 1;
  rule s2: V1 -> M do bvb1 += 1;
  # first bv-delivery: leave the wait of line 7 and broadcast aux (line 8)
  rule s3: M -> M0 when bvb0 >= 1 do aux0 += 1;
  rule s4: M -> M1 when bvb1 >= 1 do aux1 += 1;
  # enough aux<{0}> messages: qualifiers = {0}, est <- 0 (line 11)
  rule s5: M0 -> E0 when aux0 >= n - t - f;
  # second bv-delivery: contestants = {0,1}
  rule s6: M0 -> M01 when bvb1 >= 1;
  rule s7: M1 -> M01 when bvb0 >= 1;
  # qualifiers = {1} = parity: decide 1 (line 12)
  rule s8: M1 -> D1 when aux1 >= n - t - f;
  rule s9: M01 -> E0 when aux0 >= n - t - f;
  # qualifiers = {0,1}: est <- parity = 1 (line 13)
  rule s10: M01 -> E1 when aux0 + aux1 >= n - t - f;
  rule s11: M01 -> D1 when aux1 >= n - t - f;

  # --- round switch into even round 2R (absorbs the V' locations) ---------
  rule s12: D1 -> Mx do bvb1x += 1;
  rule s13: E0 -> Mx do bvb0x += 1;
  rule s14: E1 -> Mx do bvb1x += 1;

  # --- even round 2R (parity 0: qualifiers == {0} decides) ----------------
  rule s3x: Mx -> M0x when bvb0x >= 1 do aux0x += 1;
  rule s4x: Mx -> M1x when bvb1x >= 1 do aux1x += 1;
  rule s5x: M0x -> D0 when aux0x >= n - t - f;
  rule s6x: M0x -> M01x when bvb1x >= 1;
  rule s7x: M1x -> M01x when bvb0x >= 1;
  rule s8x: M1x -> E1x when aux1x >= n - t - f;
  rule s9x: M01x -> D0 when aux0x >= n - t - f;
  rule s10x: M01x -> E0x when aux0x + aux1x >= n - t - f;
  rule s11x: M01x -> E1x when aux1x >= n - t - f;

  selfloop M;
  selfloop M0;
  selfloop M1;
  selfloop M01;
  selfloop E0;
  selfloop E1;
  selfloop D1;
  selfloop Mx;
  selfloop M0x;
  selfloop M1x;
  selfloop M01x;
  selfloop D0;
  selfloop E0x;
  selfloop E1x;

  # --- superround switch (dotted in Fig. 4) --------------------------------
  switch D0 -> V0;
  switch E0x -> V0;
  switch E1x -> V1;
}
)";

ta::MultiRoundTa instantiate(const std::string& resilience) {
  std::string text = kSimplifiedTemplate;
  const std::string placeholder = "RESILIENCE";
  text.replace(text.find(placeholder), placeholder.size(), resilience);
  return ta::parse_ta(text);
}

// Appendix F, s_round_termination: the <>[] premise bundles the justice
// assumptions — BV-Termination/Obligation/Uniformity for the bv-broadcast
// gadget, reliable communication for the aux thresholds (without the -f
// Byzantine slack: only correct messages are guaranteed to arrive) — and
// the conclusion is superround termination (every location empty except the
// final D0, E0x, E1x).
constexpr const char* kSRoundTermination = R"(
<>[](
  (locV0 == 0) &&
  (locV1 == 0) &&

  # BV-Termination
  (locM == 0) &&
  # BV-Obligation
  (locM1 == 0 || bvb0 < T + 1) &&
  (locM0 == 0 || bvb1 < T + 1) &&
  # BV-Uniformity
  (locM1 == 0 || aux0 == 0) &&
  (locM0 == 0 || aux1 == 0) &&

  # Business as usual
  (locM1 == 0 || aux1 < N - T) &&
  (locM0 == 0 || aux0 < N - T) &&
  (locM01 == 0 || aux0 + aux1 < N - T) &&

  (locD1 == 0) &&
  (locE0 == 0) &&
  (locE1 == 0) &&

  # BV-Termination
  (locMx == 0) &&
  # BV-Obligation
  (locM1x == 0 || bvb0x < T + 1) &&
  (locM0x == 0 || bvb1x < T + 1) &&
  # BV-Uniformity
  (locM1x == 0 || aux0x == 0) &&
  (locM0x == 0 || aux1x == 0) &&

  (locM1x == 0 || aux1x < N - T) &&
  (locM0x == 0 || aux0x < N - T) &&
  (locM01x == 0 || aux1x < N - T) &&
  (locM01x == 0 || aux0x < N - T) &&
  (locM01x == 0 || aux0x + aux1x < N - T)
)
->
<>(
  locV0 == 0 &&
  locV1 == 0 &&
  locM == 0 &&
  locM0 == 0 &&
  locM1 == 0 &&
  locM01 == 0 &&
  locE0 == 0 &&
  locE1 == 0 &&
  locD1 == 0 &&
  locMx == 0 &&
  locM0x == 0 &&
  locM1x == 0 &&
  locM01x == 0
)
)";

}  // namespace

ta::MultiRoundTa simplified_consensus() { return instantiate("3"); }

ta::ThresholdAutomaton simplified_consensus_one_round() {
  return simplified_consensus().one_round_reduction();
}

ta::ThresholdAutomaton simplified_consensus_weakened_one_round() {
  return instantiate("2").one_round_reduction();
}

std::vector<spec::Property> simplified_properties(const ta::ThresholdAutomaton& ta) {
  std::vector<spec::Property> properties;
  // Appendix F, safety: agreement/validity invariants (Inv1_v, Inv2_v imply
  // Agree_v and Valid_v by [10, Proposition 2]).
  properties.push_back(
      spec::compile(ta, "Inv1_0", "<>(locD0 != 0) -> [](locD1 == 0 && locE1x == 0)"));
  properties.push_back(
      spec::compile(ta, "Inv2_0", "[](locV0 == 0) -> [](locD0 == 0 && locE0x == 0)"));
  properties.push_back(
      spec::compile(ta, "Inv1_1", "<>(locD1 != 0) -> [](locD0 == 0 && locE0x == 0)"));
  properties.push_back(
      spec::compile(ta, "Inv2_1", "[](locV1 == 0) -> [](locD1 == 0 && locE1x == 0)"));
  // Appendix F, liveness ingredients of Theorem 6.
  properties.push_back(
      spec::compile(ta, "Dec_0", "[](locV0 == 0) -> [](locE0 == 0 && locE1 == 0)"));
  properties.push_back(
      spec::compile(ta, "Dec_1", "[](locV1 == 0) -> [](locE0x == 0 && locE1x == 0)"));
  properties.push_back(
      spec::compile(ta, "Good_0", "[](locM0 == 0) -> [](locD0 == 0 && locE0x == 0)"));
  properties.push_back(spec::compile(ta, "Good_1", "[](locM1x == 0) -> [](locE1x == 0)"));
  properties.push_back(spec::compile(ta, "SRoundTerm", kSRoundTermination));
  return properties;
}

std::vector<spec::Property> simplified_table2_properties(const ta::ThresholdAutomaton& ta) {
  std::vector<spec::Property> properties;
  const std::vector<spec::Property> all = simplified_properties(ta);
  for (const char* name : {"Inv1_0", "Inv2_0", "SRoundTerm", "Good_0", "Dec_0"}) {
    for (const spec::Property& property : all) {
      if (property.name == name) properties.push_back(property);
    }
  }
  HV_REQUIRE(properties.size() == 5);
  return properties;
}

}  // namespace hv::models
