#include "hv/sim/lemma7.h"

namespace hv::sim {

namespace {

constexpr ProcessId kByzantine = 3;

RunnerConfig lemma7_config() {
  RunnerConfig config;
  config.n = 4;
  config.t = 1;
  config.byzantine = {kByzantine};
  config.inputs = {0, 0, 1, 0};  // the Byzantine slot's input is unused
  config.dbft.max_rounds = 1000;
  return config;
}

}  // namespace

Lemma7Script::Lemma7Script() : runner_(lemma7_config()) { runner_.start(); }

std::string Lemma7Script::play_round() {
  const int parity = round_ % 2;
  const int m = parity;      // the minority estimate, favoured by this round
  const int big = 1 - parity;  // the majority estimate M

  const auto bv = [&](ProcessId from, ProcessId to, int value) {
    return runner_.deliver_first([&, from, to, value](const Message& msg) {
      return msg.type == MsgType::kBv && msg.from == from && msg.to == to &&
             msg.round == round_ && msg.payload == BitSet2::single(value);
    });
  };
  const auto aux = [&](ProcessId from, ProcessId to) {
    return runner_.deliver_first([&, from, to](const Message& msg) {
      return msg.type == MsgType::kAux && msg.from == from && msg.to == to &&
             msg.round == round_;
    });
  };
  const auto fail = [&](const std::string& step) {
    return "round " + std::to_string(round_) + ": delivery failed at step " + step;
  };

  // Byzantine equivocation for this round.
  runner_.inject({kByzantine, maj1_, round_, MsgType::kBv, BitSet2::single(big)});
  runner_.inject({kByzantine, maj2_, round_, MsgType::kBv, BitSet2::single(big)});
  runner_.inject({kByzantine, maj2_, round_, MsgType::kBv, BitSet2::single(m)});
  runner_.inject({kByzantine, min_, round_, MsgType::kBv, BitSet2::single(m)});
  runner_.inject({kByzantine, maj1_, round_, MsgType::kAux, BitSet2::single(big)});
  runner_.inject({kByzantine, maj2_, round_, MsgType::kAux, BitSet2::single(m)});
  runner_.inject({kByzantine, min_, round_, MsgType::kAux, BitSet2::single(m)});

  // (a) maj1 and maj2 bv-deliver M first (senders: maj1, maj2, Byzantine).
  for (const ProcessId to : {maj1_, maj2_}) {
    if (!bv(maj1_, to, big)) return fail("BV(M) from maj1");
    if (!bv(maj2_, to, big)) return fail("BV(M) from maj2");
    if (!bv(kByzantine, to, big)) return fail("BV(M) from byz");
  }
  // (b) maj2 sees m from min and the Byzantine process, echoes m, and
  // bv-delivers m second.
  if (!bv(min_, maj2_, m)) return fail("BV(m) min->maj2");
  if (!bv(kByzantine, maj2_, m)) return fail("BV(m) byz->maj2");
  if (!bv(maj2_, maj2_, m)) return fail("echo BV(m) maj2->maj2");
  // (c) min bv-delivers its own value m first (senders: min, Byzantine,
  // maj2's echo)...
  if (!bv(min_, min_, m)) return fail("BV(m) min->min");
  if (!bv(kByzantine, min_, m)) return fail("BV(m) byz->min");
  if (!bv(maj2_, min_, m)) return fail("echo BV(m) maj2->min");
  // ...then sees M from maj1 and maj2, echoes it, and delivers M second.
  if (!bv(maj1_, min_, big)) return fail("BV(M) maj1->min");
  if (!bv(maj2_, min_, big)) return fail("BV(M) maj2->min");
  if (!bv(min_, min_, big)) return fail("echo BV(M) min->min");

  // (d) aux phase. maj1 sees only {M}: qualifiers {M}, M != parity, so it
  // keeps estimate M and does not decide.
  if (!aux(maj1_, maj1_)) return fail("aux maj1->maj1");
  if (!aux(maj2_, maj1_)) return fail("aux maj2->maj1");
  if (!aux(kByzantine, maj1_)) return fail("aux byz->maj1");
  // maj2 and min see both values: qualifiers {0,1}, estimate <- parity m.
  if (!aux(maj1_, maj2_)) return fail("aux maj1->maj2");
  if (!aux(maj2_, maj2_)) return fail("aux maj2->maj2");
  if (!aux(kByzantine, maj2_)) return fail("aux byz->maj2");
  if (!aux(min_, min_)) return fail("aux min->min");
  if (!aux(kByzantine, min_)) return fail("aux byz->min");
  if (!aux(maj1_, min_)) return fail("aux maj1->min");

  // Validate the oscillation invariant.
  for (const ProcessId id : runner_.correct_ids()) {
    if (runner_.process(id).current_round() != round_ + 1) {
      return "round " + std::to_string(round_) + ": p" + std::to_string(id) +
             " did not advance";
    }
    if (runner_.process(id).decision()) {
      return "round " + std::to_string(round_) + ": p" + std::to_string(id) +
             " unexpectedly decided";
    }
  }
  if (runner_.process(maj1_).estimate() != big) return "maj1 estimate diverged";
  if (runner_.process(maj2_).estimate() != m) return "maj2 estimate diverged";
  if (runner_.process(min_).estimate() != m) return "min estimate diverged";

  // Rotate roles: the two m-holders are the next majority.
  const ProcessId old_maj1 = maj1_;
  maj1_ = min_;
  min_ = old_maj1;
  ++round_;
  return {};
}

std::string Lemma7Script::play_rounds(int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const std::string diagnostic = play_round();
    if (!diagnostic.empty()) return diagnostic;
  }
  return {};
}

}  // namespace hv::sim
