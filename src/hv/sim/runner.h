// Orchestration of a DBFT execution: correct processes, the network, a
// pluggable Byzantine adversary, and invariant monitors (agreement,
// validity) evaluated as the run unfolds.
#ifndef HV_SIM_RUNNER_H
#define HV_SIM_RUNNER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "hv/algo/dbft.h"
#include "hv/sim/message.h"
#include "hv/sim/network.h"

namespace hv::sim {

class Runner;

/// Picks the next pending message to deliver. The only non-determinism of a
/// run besides Byzantine injections.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Index into runner.network().pending(); called only when non-empty.
  virtual std::size_t pick(const Runner& runner, std::mt19937_64& rng) = 0;
};

/// Controls the Byzantine processes: inspects the runner before every
/// delivery and may inject arbitrary messages on their behalf.
class Adversary {
 public:
  virtual ~Adversary() = default;
  virtual void before_step(Runner& runner) { (void)runner; }
};

struct RunnerConfig {
  int n = 4;
  int t = 1;
  std::vector<ProcessId> byzantine;  // ids in [0, n)
  std::vector<int> inputs;           // one per process; ignored for Byzantine ids
  algo::DbftConfig dbft;             // n and t are overwritten from this config
  std::uint64_t seed = 1;
};

/// Rejects a malformed runner configuration with a message naming the bad
/// field: n must be positive, `input_field` (inputs/proposals) must list
/// exactly n values, byzantine ids must be unique, in [0, n) and at most t
/// many. Shared by Runner and algo::VectorRunner; throws InvalidArgument.
void validate_runner_config(int n, int t, const std::vector<ProcessId>& byzantine,
                            std::size_t input_count, const char* input_field);

class Runner {
 public:
  explicit Runner(RunnerConfig config, std::unique_ptr<Adversary> adversary = nullptr);

  /// Starts every correct process (propose).
  void start();

  /// Adversary hook + one delivery chosen by the scheduler. Returns false
  /// when no message is pending.
  bool step(Scheduler& scheduler);

  /// Runs until quiescence, everyone decided+halted, or `max_steps`.
  /// Returns the number of deliveries performed.
  std::int64_t run(Scheduler& scheduler, std::int64_t max_steps);

  // --- scripted control (Lemma 7 replay, targeted tests) --------------------
  /// Delivers the first pending message matching the predicate; false if
  /// none matches.
  bool deliver_first(const std::function<bool(const Message&)>& predicate);
  /// Injects a message on behalf of a Byzantine process.
  void inject(Message message);

  // --- observers -------------------------------------------------------------
  const Network& network() const noexcept { return network_; }
  bool is_byzantine(ProcessId id) const { return byzantine_.contains(id); }
  const std::vector<ProcessId>& correct_ids() const noexcept { return correct_ids_; }
  const algo::DbftProcess& process(ProcessId id) const;
  algo::DbftProcess& process(ProcessId id);
  const RunnerConfig& config() const noexcept { return config_; }

  bool all_correct_decided() const;
  /// Empty optional if no correct process decided yet.
  std::optional<int> first_decision() const;
  /// "" if agreement holds so far, else a diagnostic.
  std::string agreement_violation() const;
  /// "" if every decision equals some correct input, else a diagnostic.
  std::string validity_violation() const;

 private:
  RunnerConfig config_;
  std::set<ProcessId> byzantine_;
  std::vector<ProcessId> correct_ids_;
  Network network_;
  std::vector<std::unique_ptr<algo::DbftProcess>> processes_;  // null for Byzantine
  std::unique_ptr<Adversary> adversary_;
  std::mt19937_64 rng_;
};

// --- schedulers ----------------------------------------------------------------

/// Uniformly random delivery (a fair-in-the-limit asynchronous adversary).
class RandomScheduler : public Scheduler {
 public:
  std::size_t pick(const Runner& runner, std::mt19937_64& rng) override;
};

/// FIFO delivery (synchronous-looking executions).
class FifoScheduler : public Scheduler {
 public:
  std::size_t pick(const Runner& runner, std::mt19937_64& rng) override;
};

/// Realizes the fairness assumption of Definition 3: in every round it
/// prioritizes BV messages carrying (round mod 2) from correct senders, so
/// all correct processes bv-deliver the round's parity first, making the
/// round good and forcing a decision (Lemma 4 / Theorem 6).
class GoodRoundScheduler : public Scheduler {
 public:
  std::size_t pick(const Runner& runner, std::mt19937_64& rng) override;
};

// --- adversaries ----------------------------------------------------------------

/// Byzantine processes crash silently (f actual faults, no messages).
class SilentAdversary : public Adversary {};

/// Byzantine processes equivocate: per round, each sends BV(0) and BV(1)
/// and conflicting aux sets to different correct processes (seeded).
class EquivocatingAdversary : public Adversary {
 public:
  void before_step(Runner& runner) override;

 private:
  std::set<std::pair<ProcessId, int>> injected_;  // (byz id, round) once
};

}  // namespace hv::sim

#endif  // HV_SIM_RUNNER_H
