#include "hv/sim/network.h"

#include "hv/util/error.h"

namespace hv::sim {

Message Network::take(std::size_t index) {
  HV_REQUIRE(index < pending_.size());
  Message message = pending_[index];
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
  return message;
}

std::optional<Message> Network::take_first(
    const std::function<bool(const Message&)>& predicate) {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (predicate(pending_[i])) return take(i);
  }
  return std::nullopt;
}

}  // namespace hv::sim
