// Orchestration of vector-consensus processes over the simulated network —
// the VectorRunner counterpart of sim::Runner for the superblock protocol.
#ifndef HV_SIM_VECTOR_RUNNER_H
#define HV_SIM_VECTOR_RUNNER_H

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "hv/algo/vector_consensus.h"
#include "hv/sim/network.h"

namespace hv::algo {

/// Minimal orchestration for a set of vector-consensus processes over the
/// simulator's network (the DBFT Runner's counterpart for this protocol).
class VectorRunner {
 public:
  struct Config {
    int n = 4;
    int t = 1;
    std::vector<sim::ProcessId> byzantine;   // faulty processes
    /// Faulty proposers equivocate their RBC INIT (different values to
    /// different recipients) instead of staying silent; Bracha RBC must
    /// still keep every correct superblock consistent.
    bool equivocate_proposals = false;
    std::vector<std::int32_t> proposals;     // one per process
    DbftConfig dbft;
    std::uint64_t seed = 1;
  };

  explicit VectorRunner(Config config);

  void start();
  /// Runs with uniformly random delivery until quiescent, everyone decided,
  /// or the step budget is exhausted; returns deliveries performed.
  std::int64_t run_random(std::int64_t max_steps);
  /// Like run_random, but prioritizes parity-value BV messages per round
  /// (the Definition 3 fairness), which guarantees termination.
  std::int64_t run_fair(std::int64_t max_steps);

  const VectorConsensusProcess& process(sim::ProcessId id) const;
  const std::vector<sim::ProcessId>& correct_ids() const noexcept { return correct_ids_; }
  bool all_decided() const;
  /// "" if all decided vectors are equal, else a diagnostic.
  std::string agreement_violation() const;

 private:
  std::int64_t run(std::int64_t max_steps, bool fair);

  Config config_;
  std::vector<sim::ProcessId> correct_ids_;
  sim::Network network_;
  std::vector<std::unique_ptr<VectorConsensusProcess>> processes_;
  std::mt19937_64 rng_;
};

}  // namespace hv::algo

#endif  // HV_SIM_VECTOR_RUNNER_H
