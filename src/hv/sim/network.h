// Asynchronous reliable point-to-point network (Section 2): no bound on
// message delay, but every message sent is eventually deliverable. The
// network holds the multiset of in-flight messages; a scheduler (or a
// scripted test) chooses which one to deliver next, which is the only
// source of non-determinism besides Byzantine injections.
#ifndef HV_SIM_NETWORK_H
#define HV_SIM_NETWORK_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "hv/sim/message.h"

namespace hv::sim {

class Network {
 public:
  /// Queues a message for later delivery.
  void send(Message message) { pending_.push_back(message); }

  bool idle() const noexcept { return pending_.empty(); }
  std::size_t pending_count() const noexcept { return pending_.size(); }
  const std::vector<Message>& pending() const noexcept { return pending_; }

  /// Removes and returns the pending message at `index`.
  Message take(std::size_t index);

  /// Removes and returns the first pending message matching the predicate,
  /// or nullopt. Used by scripted executions (e.g. the Lemma 7 replay).
  std::optional<Message> take_first(const std::function<bool(const Message&)>& predicate);

  std::int64_t total_sent() const noexcept { return total_sent_; }
  std::int64_t total_delivered() const noexcept { return total_delivered_; }
  void count_delivery() noexcept { ++total_delivered_; }
  void count_send() noexcept { ++total_sent_; }

 private:
  std::vector<Message> pending_;
  std::int64_t total_sent_ = 0;
  std::int64_t total_delivered_ = 0;
};

}  // namespace hv::sim

#endif  // HV_SIM_NETWORK_H
