#include "hv/sim/conformance.h"

#include <vector>

#include "hv/models/bv_broadcast.h"
#include "hv/models/simplified_consensus.h"
#include "hv/util/error.h"

namespace hv::sim {

// --- the reusable projection checker ------------------------------------------

TaProjectionChecker::TaProjectionChecker(const ta::ThresholdAutomaton& ta,
                                         const ta::ParamValuation& params)
    : ta_(ta), system_(ta_, params) {}

bool TaProjectionChecker::validate_transition(const ta::Config& before, const ta::Config& after,
                                              std::string* diagnostic) const {
  if (before == after) return true;
  // Identify the moving process's source and destination.
  ta::LocationId from = -1;
  ta::LocationId to = -1;
  for (ta::LocationId location = 0; location < ta_.location_count(); ++location) {
    const std::int64_t delta = after.counters[location] - before.counters[location];
    if (delta == -1 && from == -1) {
      from = location;
    } else if (delta == 1 && to == -1) {
      to = location;
    } else if (delta != 0) {
      *diagnostic = "more than one process moved in a single delivery: " +
                    system_.config_to_string(before) + " -> " + system_.config_to_string(after);
      return false;
    }
  }
  if (from == -1 && to == -1) {
    *diagnostic = "shared counters changed without a location change";
    return false;
  }
  if (from == -1 || to == -1) {
    *diagnostic = "unbalanced counter change (a process appeared or vanished)";
    return false;
  }
  if (search_path(before, after, from, to)) return true;
  *diagnostic = "no enabled rule path explains " + ta_.location(from).name + " -> " +
                ta_.location(to).name + " with the observed counter updates (" +
                system_.config_to_string(before) + " -> " + system_.config_to_string(after) +
                ")";
  return false;
}

bool TaProjectionChecker::search_path(const ta::Config& current, const ta::Config& target,
                                      ta::LocationId at, ta::LocationId goal) const {
  if (at == goal && current == target) return true;
  for (ta::RuleId rule = 0; rule < ta_.rule_count(); ++rule) {
    const ta::Rule& r = ta_.rule(rule);
    if (r.is_self_loop() || r.from != at) continue;
    if (!system_.enabled(rule, current)) continue;
    // Overshooting a shared counter can never be repaired (monotone).
    const ta::Config next = system_.successor(current, rule);
    bool overshoot = false;
    for (int i = 0; i < system_.shared_count(); ++i) {
      overshoot = overshoot || next.shared[i] > target.shared[i];
    }
    if (overshoot) continue;
    if (search_path(next, target, r.to, goal)) return true;
  }
  return false;
}

namespace {

// Shared driving loop: start the runner, project after each delivery,
// validate each projected transition. The Projector supplies the model,
// the per-step projection, and the expected post-start configuration.
template <typename Projector>
ConformanceResult drive(Runner& runner, Scheduler& scheduler, std::int64_t max_steps,
                        Projector& projector) {
  ConformanceResult result;
  runner.start();
  std::optional<ta::Config> previous = projector.project(&result.diagnostic);
  if (!previous) return result;
  if (!projector.validate_start(*previous, &result.diagnostic)) return result;
  while (result.deliveries < max_steps) {
    if (!runner.step(scheduler)) break;
    ++result.deliveries;
    std::optional<ta::Config> current = projector.project(&result.diagnostic);
    if (!current) return result;
    if (!projector.checker().validate_transition(*previous, *current, &result.diagnostic)) {
      return result;
    }
    if (*current != *previous) ++result.transitions;
    previous = std::move(current);
  }
  result.ok = true;
  return result;
}

ta::ParamValuation params_for(const ta::ThresholdAutomaton& ta, const Runner& runner) {
  const RunnerConfig& config = runner.config();
  return {{*ta.find_variable("n"), config.n},
          {*ta.find_variable("t"), config.t},
          {*ta.find_variable("f"), static_cast<std::int64_t>(config.byzantine.size())}};
}

// --- Fig. 4 projection -----------------------------------------------------------

class SimplifiedProjector {
 public:
  explicit SimplifiedProjector(Runner& runner)
      : runner_(runner),
        ta_(models::simplified_consensus_one_round()),
        checker_(ta_, params_for(ta_, runner)) {}

  const TaProjectionChecker& checker() const noexcept { return checker_; }

  std::optional<ta::Config> project(std::string* diagnostic) const {
    ta::Config config;
    config.counters.assign(ta_.location_count(), 0);
    config.shared.assign(checker_.system().shared_count(), 0);
    for (const ProcessId id : runner_.correct_ids()) {
      const algo::DbftProcess& process = runner_.process(id);
      const auto location = project_process(process, diagnostic);
      if (!location) return std::nullopt;
      ++config.counters[*location];

      const auto round1 = process.round_view(1);
      const auto& estimates = process.estimate_history();
      if (!estimates.empty()) {
        ++config.shared[shared_pos(estimates[0] == 0 ? "bvb0" : "bvb1")];
      }
      if (round1.aux_sent) {
        if (!round1.aux_payload.is_singleton()) {
          *diagnostic = "p" + std::to_string(id) + ": non-singleton first aux payload";
          return std::nullopt;
        }
        ++config.shared[shared_pos(round1.aux_payload.singleton_value() == 0 ? "aux0" : "aux1")];
      }
      const auto round2 = process.round_view(2);
      if (round2.entered && estimates.size() >= 2) {
        ++config.shared[shared_pos(estimates[1] == 0 ? "bvb0x" : "bvb1x")];
      }
      if (round2.aux_sent) {
        ++config.shared[
            shared_pos(round2.aux_payload.singleton_value() == 0 ? "aux0x" : "aux1x")];
      }
    }
    return config;
  }

  // The first projection must be the TA's initial configuration after
  // everyone's round-1 broadcast (a * s1 + b * s2 from the V-split).
  bool validate_start(const ta::Config& first, std::string* diagnostic) const {
    ta::Config config;
    config.counters.assign(ta_.location_count(), 0);
    config.shared.assign(checker_.system().shared_count(), 0);
    for (const ProcessId id : runner_.correct_ids()) {
      ++config.counters[loc(runner_.config().inputs[id] == 0 ? "V0" : "V1")];
    }
    for (const char* rule_name : {"s1", "s2"}) {
      for (ta::RuleId rule = 0; rule < ta_.rule_count(); ++rule) {
        if (ta_.rule(rule).name != rule_name) continue;
        while (checker_.system().enabled(rule, config)) {
          config = checker_.system().successor(config, rule);
        }
      }
    }
    if (config != first) {
      *diagnostic = "initial projection is not the post-broadcast configuration: " +
                    checker_.system().config_to_string(first);
      return false;
    }
    return true;
  }

 private:
  ta::LocationId loc(const char* name) const { return *ta_.find_location(name); }
  int shared_pos(const char* name) const {
    return checker_.system().shared_index(*ta_.find_variable(name));
  }

  std::optional<ta::LocationId> project_process(const algo::DbftProcess& process,
                                                std::string* diagnostic) const {
    const auto fail = [&](const std::string& what) {
      *diagnostic = "p" + std::to_string(process.id()) + ": " + what;
      return std::nullopt;
    };
    const auto by_contestants = [&](const BitSet2 contestants, const char* m0, const char* m1,
                                    const char* m01) -> std::optional<ta::LocationId> {
      if (contestants == BitSet2::single(0)) return loc(m0);
      if (contestants == BitSet2::single(1)) return loc(m1);
      if (contestants == BitSet2(3)) return loc(m01);
      return fail("aux sent with empty contestants");
    };
    const auto round1 = process.round_view(1);
    if (!round1.entered) return fail("never entered round 1");
    if (!round1.advanced) {
      if (!round1.aux_sent) return loc("M");
      return by_contestants(round1.contestants, "M0", "M1", "M01");
    }
    const auto round2 = process.round_view(2);
    if (!round2.entered) return fail("advanced round 1 but never entered round 2");
    if (!round2.advanced) {
      if (!round2.aux_sent) return loc("Mx");
      return by_contestants(round2.contestants, "M0x", "M1x", "M01x");
    }
    // Superround finished: the round-2 outcome picks the final location.
    if (round2.qualifiers == BitSet2::single(0)) return loc("D0");
    if (round2.qualifiers == BitSet2::single(1)) return loc("E1x");
    if (round2.qualifiers == BitSet2(3)) return loc("E0x");
    return fail("advanced round 2 with empty qualifiers");
  }

  Runner& runner_;
  ta::ThresholdAutomaton ta_;
  TaProjectionChecker checker_;
};

// --- Fig. 2 projection (Table 1 semantics) ---------------------------------------

class BvBroadcastProjector {
 public:
  explicit BvBroadcastProjector(Runner& runner)
      : runner_(runner),
        ta_(models::bv_broadcast()),
        checker_(ta_, params_for(ta_, runner)) {}

  const TaProjectionChecker& checker() const noexcept { return checker_; }

  std::optional<ta::Config> project(std::string* diagnostic) const {
    ta::Config config;
    config.counters.assign(ta_.location_count(), 0);
    config.shared.assign(checker_.system().shared_count(), 0);
    for (const ProcessId id : runner_.correct_ids()) {
      const auto round1 = runner_.process(id).round_view(1);
      const auto location = table1_location(round1.bv_broadcast, round1.contestants);
      if (!location) {
        *diagnostic = "p" + std::to_string(id) + ": broadcast " +
                      round1.bv_broadcast.to_string() + " / delivered " +
                      round1.contestants.to_string() + " matches no Table 1 location";
        return std::nullopt;
      }
      ++config.counters[*location];
      // b_v counts the BV(v) messages sent by correct processes; every
      // correct process broadcasts each value at most once.
      for (const int value : {0, 1}) {
        if (round1.bv_broadcast.contains(value)) {
          ++config.shared[shared_pos(value == 0 ? "b0" : "b1")];
        }
      }
    }
    return config;
  }

  bool validate_start(const ta::Config& first, std::string* diagnostic) const {
    ta::Config config;
    config.counters.assign(ta_.location_count(), 0);
    config.shared.assign(checker_.system().shared_count(), 0);
    for (const ProcessId id : runner_.correct_ids()) {
      ++config.counters[loc(runner_.config().inputs[id] == 0 ? "V0" : "V1")];
    }
    for (const char* rule_name : {"r1", "r2"}) {
      for (ta::RuleId rule = 0; rule < ta_.rule_count(); ++rule) {
        if (ta_.rule(rule).name != rule_name) continue;
        while (checker_.system().enabled(rule, config)) {
          config = checker_.system().successor(config, rule);
        }
      }
    }
    if (config != first) {
      *diagnostic = "initial projection is not the post-broadcast configuration";
      return false;
    }
    return true;
  }

 private:
  ta::LocationId loc(const char* name) const { return *ta_.find_location(name); }
  int shared_pos(const char* name) const {
    return checker_.system().shared_index(*ta_.find_variable(name));
  }

  // Table 1: (values broadcast, values delivered) -> location.
  std::optional<ta::LocationId> table1_location(BitSet2 broadcast, BitSet2 delivered) const {
    const unsigned key = broadcast.mask() | (delivered.mask() << 2);
    switch (key) {
      case 0b0001:  // broadcast {0}, delivered {}
        return loc("B0");
      case 0b0010:
        return loc("B1");
      case 0b0011:
        return loc("B01");
      case 0b0101:  // broadcast {0}, delivered {0}
        return loc("C0");
      case 0b0111:  // broadcast {0,1}, delivered {0}
        return loc("CB0");
      case 0b1010:
        return loc("C1");
      case 0b1011:
        return loc("CB1");
      case 0b1111:
        return loc("C01");
      default:
        return std::nullopt;
    }
  }

  Runner& runner_;
  ta::ThresholdAutomaton ta_;
  TaProjectionChecker checker_;
};

// Only deliveries that stay within round 1 keep the Fig. 2 projection
// meaningful; a scheduler wrapper refuses everything else.
class Round1Scheduler : public Scheduler {
 public:
  explicit Round1Scheduler(Scheduler& inner) : inner_(inner) {}

  std::size_t pick(const Runner& runner, std::mt19937_64& rng) override {
    // Prefer whatever the inner scheduler picks when it is a round-1 BV
    // message; otherwise the first round-1 BV message; otherwise give up by
    // returning the inner pick (the harness stops on advance anyway).
    const auto& pending = runner.network().pending();
    const std::size_t chosen = inner_.pick(runner, rng);
    const auto is_round1_bv = [](const Message& m) {
      return m.round == 1 && m.type == MsgType::kBv;
    };
    if (is_round1_bv(pending[chosen])) return chosen;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (is_round1_bv(pending[i])) return i;
    }
    return chosen;
  }

 private:
  Scheduler& inner_;
};

}  // namespace

ConformanceResult check_simplified_ta_conformance(Runner& runner, Scheduler& scheduler,
                                                  std::int64_t max_steps) {
  SimplifiedProjector projector(runner);
  return drive(runner, scheduler, max_steps, projector);
}

ConformanceResult check_bv_broadcast_conformance(Runner& runner, Scheduler& scheduler,
                                                 std::int64_t max_steps) {
  BvBroadcastProjector projector(runner);
  Round1Scheduler round1(scheduler);
  // Stop before any process leaves round 1: drive until the network holds
  // only non-round-1-BV traffic.
  ConformanceResult result;
  runner.start();
  std::optional<ta::Config> previous = projector.project(&result.diagnostic);
  if (!previous) return result;
  if (!projector.validate_start(*previous, &result.diagnostic)) return result;
  std::mt19937_64 rng(runner.config().seed ^ 0x9e3779b97f4a7c15ull);
  while (result.deliveries < max_steps) {
    const auto& pending = runner.network().pending();
    bool any_round1_bv = false;
    for (const Message& message : pending) {
      any_round1_bv = any_round1_bv || (message.round == 1 && message.type == MsgType::kBv);
    }
    if (!any_round1_bv) break;  // round 1's broadcast phase has quiesced
    const std::size_t index = round1.pick(runner, rng);
    if (runner.network().pending()[index].round != 1) break;
    // Deliver through the runner's scripted interface to keep counters.
    const Message message = runner.network().pending()[index];
    if (!runner.deliver_first([&](const Message& m) {
          return m.from == message.from && m.to == message.to && m.round == message.round &&
                 m.type == message.type && m.payload == message.payload;
        })) {
      break;
    }
    ++result.deliveries;
    std::optional<ta::Config> current = projector.project(&result.diagnostic);
    if (!current) return result;
    if (!projector.checker().validate_transition(*previous, *current, &result.diagnostic)) {
      return result;
    }
    if (*current != *previous) ++result.transitions;
    previous = std::move(current);
  }
  result.ok = true;
  return result;
}

}  // namespace hv::sim
