// Messages of the DBFT protocol stack (Fig. 1 and Alg. 1).
//
// All payloads are over binary values, so sets of values fit in a 2-bit
// mask. Messages carry their round tag: the algorithms are
// communication-closed, and the runtime buffers future-round messages and
// discards past-round ones.
#ifndef HV_SIM_MESSAGE_H
#define HV_SIM_MESSAGE_H

#include <cstdint>
#include <string>

namespace hv::sim {

using ProcessId = int;

enum class MsgType {
  kBv,        // (BV, <v, i>) of the binary value broadcast (Fig. 1)
  kAux,       // (aux, <contestants, i>) of the consensus (Alg. 1 line 8)
  kRbcInit,   // Bracha reliable broadcast: proposer's initial send
  kRbcEcho,   // Bracha reliable broadcast: witness echo
  kRbcReady,  // Bracha reliable broadcast: commit-ready
};

/// Set over {0,1} as a bitmask.
class BitSet2 {
 public:
  constexpr BitSet2() = default;
  constexpr explicit BitSet2(unsigned mask) : mask_(mask & 3u) {}
  static constexpr BitSet2 single(int value) { return BitSet2(1u << value); }

  constexpr bool contains(int value) const { return (mask_ >> value) & 1u; }
  constexpr bool empty() const { return mask_ == 0; }
  constexpr bool is_singleton() const { return mask_ == 1 || mask_ == 2; }
  constexpr int singleton_value() const { return mask_ == 1 ? 0 : 1; }
  constexpr unsigned mask() const { return mask_; }
  constexpr int size() const { return static_cast<int>((mask_ & 1u) + (mask_ >> 1)); }

  constexpr void insert(int value) { mask_ |= 1u << value; }
  constexpr bool subset_of(BitSet2 other) const { return (mask_ & ~other.mask_) == 0; }
  constexpr BitSet2 union_with(BitSet2 other) const { return BitSet2(mask_ | other.mask_); }

  friend constexpr bool operator==(BitSet2 lhs, BitSet2 rhs) = default;

  std::string to_string() const {
    if (mask_ == 0) return "{}";
    if (mask_ == 1) return "{0}";
    if (mask_ == 2) return "{1}";
    return "{0,1}";
  }

 private:
  unsigned mask_ = 0;
};

struct Message {
  ProcessId from = -1;
  ProcessId to = -1;
  int round = 0;
  MsgType type = MsgType::kBv;
  /// kBv: the broadcast binary value as a singleton; kAux: the contestants
  /// set the sender reports. Unused by the RBC message kinds.
  BitSet2 payload;
  /// Which concurrent instance this message belongs to (the vector
  /// consensus runs one binary consensus and one reliable broadcast per
  /// proposer; plain DBFT uses instance 0).
  int instance = 0;
  /// RBC kinds: the proposer whose value is being relayed (`from` is the
  /// relayer, not necessarily the proposer).
  ProcessId subject = -1;
  /// RBC kinds: the proposed value being disseminated.
  std::int32_t data = 0;

  std::string to_string() const {
    const char* kind = type == MsgType::kBv        ? "BV"
                       : type == MsgType::kAux      ? "AUX"
                       : type == MsgType::kRbcInit  ? "RBC-INIT"
                       : type == MsgType::kRbcEcho  ? "RBC-ECHO"
                                                    : "RBC-READY";
    return std::string(kind) + "(r" + std::to_string(round) + ", i" +
           std::to_string(instance) + ", p" + std::to_string(from) + "->p" +
           std::to_string(to) + ", " + payload.to_string() + ")";
  }
};

}  // namespace hv::sim

#endif  // HV_SIM_MESSAGE_H
