#include "hv/sim/vector_runner.h"

#include <algorithm>
#include <tuple>

#include "hv/sim/runner.h"
#include "hv/util/error.h"

namespace hv::algo {

// --- VectorRunner ----------------------------------------------------------------

VectorRunner::VectorRunner(Config config) : config_(std::move(config)), rng_(config_.seed) {
  sim::validate_runner_config(config_.n, config_.t, config_.byzantine,
                              config_.proposals.size(), "proposals");
  config_.dbft.n = config_.n;
  config_.dbft.t = config_.t;
  processes_.resize(static_cast<std::size_t>(config_.n));
  for (sim::ProcessId id = 0; id < config_.n; ++id) {
    if (std::find(config_.byzantine.begin(), config_.byzantine.end(), id) !=
        config_.byzantine.end()) {
      continue;  // silent faulty process
    }
    correct_ids_.push_back(id);
    processes_[id] = std::make_unique<VectorConsensusProcess>(
        id, config_.proposals[id], config_.dbft,
        [this](sim::Message message) { network_.send(message); });
  }
}

void VectorRunner::start() {
  for (const sim::ProcessId id : correct_ids_) processes_[id]->start();
  if (config_.equivocate_proposals) {
    // Byzantine proposers send conflicting INITs: value v to one half of
    // the correct processes, v+1 to the other half.
    for (const sim::ProcessId byz : config_.byzantine) {
      for (std::size_t i = 0; i < correct_ids_.size(); ++i) {
        sim::Message message;
        message.from = byz;
        message.to = correct_ids_[i];
        message.type = sim::MsgType::kRbcInit;
        message.instance = byz;
        message.subject = byz;
        message.data = config_.proposals[byz] + (i < correct_ids_.size() / 2 ? 0 : 1);
        network_.send(message);
      }
    }
  }
}

std::int64_t VectorRunner::run(std::int64_t max_steps, bool fair) {
  std::int64_t steps = 0;
  while (steps < max_steps && !network_.idle() && !all_decided()) {
    std::size_t index = 0;
    if (fair) {
      // Per instance and round, prefer BV messages carrying the round's
      // parity (Definition 3 per binary instance); RBC traffic first so
      // proposals spread before votes settle.
      const auto& pending = network_.pending();
      const auto rank = [](const sim::Message& m) {
        if (m.type == sim::MsgType::kRbcInit || m.type == sim::MsgType::kRbcEcho ||
            m.type == sim::MsgType::kRbcReady) {
          return std::tuple<int, int, int>(0, 0, 0);
        }
        const int parity = m.round % 2;
        const int klass =
            (m.type == sim::MsgType::kBv && m.payload == sim::BitSet2::single(parity)) ? 0 : 1;
        return std::tuple<int, int, int>(1, m.round, klass);
      };
      for (std::size_t i = 1; i < pending.size(); ++i) {
        if (rank(pending[i]) < rank(pending[index])) index = i;
      }
    } else {
      index = std::uniform_int_distribution<std::size_t>(0, network_.pending_count() - 1)(rng_);
    }
    const sim::Message message = network_.take(index);
    if (processes_[message.to] != nullptr) processes_[message.to]->on_message(message);
    ++steps;
  }
  return steps;
}

std::int64_t VectorRunner::run_random(std::int64_t max_steps) { return run(max_steps, false); }

std::int64_t VectorRunner::run_fair(std::int64_t max_steps) { return run(max_steps, true); }

const VectorConsensusProcess& VectorRunner::process(sim::ProcessId id) const {
  HV_REQUIRE(processes_[id] != nullptr);
  return *processes_[id];
}

bool VectorRunner::all_decided() const {
  return std::all_of(correct_ids_.begin(), correct_ids_.end(), [&](sim::ProcessId id) {
    return processes_[id]->decision().has_value();
  });
}

std::string VectorRunner::agreement_violation() const {
  std::optional<std::map<sim::ProcessId, std::int32_t>> reference;
  sim::ProcessId reference_id = -1;
  for (const sim::ProcessId id : correct_ids_) {
    const auto decision = processes_[id]->decision();
    if (!decision) continue;
    if (reference && *reference != *decision) {
      return "p" + std::to_string(id) + " and p" + std::to_string(reference_id) +
             " decided different vectors";
    }
    reference = decision;
    reference_id = id;
  }
  return {};
}

}  // namespace hv::algo
