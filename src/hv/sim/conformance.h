// Model conformance: checks that *live executions of the real pseudocode*
// project onto runs of the paper's threshold automata.
//
// The paper's holistic claim is that the verified model matches the
// pseudocode; these harnesses test that claim empirically. While a DBFT run
// unfolds on the simulator, every delivery is followed by projecting each
// correct process onto a TA location, and the resulting configuration
// sequence is validated against the counter-system semantics: consecutive
// configurations must be connected by a path of enabled rules with exactly
// the observed shared-counter updates.
//
// Two projections are provided:
//   * the simplified consensus TA (Fig. 4) over the first superround
//     (rounds 1 and 2 of Algorithm 1), with the gadget counters
//     bvb_v/aux_v projected from what correct processes sent;
//   * the bv-broadcast TA (Fig. 2) over round 1 only, using Table 1's
//     location semantics (which values a process has broadcast/delivered).
#ifndef HV_SIM_CONFORMANCE_H
#define HV_SIM_CONFORMANCE_H

#include <cstdint>
#include <optional>
#include <string>

#include "hv/sim/runner.h"
#include "hv/ta/automaton.h"
#include "hv/ta/counter_system.h"

namespace hv::sim {

struct ConformanceResult {
  bool ok = false;
  std::string diagnostic;           // empty iff ok
  std::int64_t deliveries = 0;      // simulator steps driven
  std::int64_t transitions = 0;     // projected TA transitions validated
};

/// Validates a sequence of projected configurations against a TA's counter
/// system: each consecutive pair must be connected by a path of enabled
/// rules moving a single process. Reusable for any projection.
class TaProjectionChecker {
 public:
  TaProjectionChecker(const ta::ThresholdAutomaton& ta, const ta::ParamValuation& params);

  const ta::ThresholdAutomaton& automaton() const noexcept { return ta_; }
  const ta::CounterSystem& system() const noexcept { return system_; }

  /// True iff `after` is reachable from `before` by zero or one process
  /// moving along enabled rules with matching shared updates; on failure a
  /// diagnostic is written.
  bool validate_transition(const ta::Config& before, const ta::Config& after,
                           std::string* diagnostic) const;

 private:
  bool search_path(const ta::Config& current, const ta::Config& target, ta::LocationId at,
                   ta::LocationId goal) const;

  const ta::ThresholdAutomaton& ta_;
  ta::CounterSystem system_;
};

/// Drives `runner` (already constructed, not yet started) with the given
/// scheduler for up to `max_steps` deliveries, validating the projection
/// onto the simplified consensus TA after every step. The runner's n/t and
/// actual Byzantine count become the TA parameters (n, t, f).
ConformanceResult check_simplified_ta_conformance(Runner& runner, Scheduler& scheduler,
                                                  std::int64_t max_steps);

/// Same driving loop, but projecting round 1 onto the bv-broadcast TA of
/// Fig. 2 via Table 1's semantics (broadcast set x delivered set).
ConformanceResult check_bv_broadcast_conformance(Runner& runner, Scheduler& scheduler,
                                                 std::int64_t max_steps);

}  // namespace hv::sim

#endif  // HV_SIM_CONFORMANCE_H
