#include "hv/sim/runner.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "hv/util/error.h"

namespace hv::sim {

void validate_runner_config(int n, int t, const std::vector<ProcessId>& byzantine,
                            std::size_t input_count, const char* input_field) {
  if (n <= 0) {
    throw InvalidArgument("runner: n must be positive, got " + std::to_string(n));
  }
  if (t < 0) {
    throw InvalidArgument("runner: t must be non-negative, got " + std::to_string(t));
  }
  if (static_cast<int>(input_count) != n) {
    throw InvalidArgument("runner: " + std::string(input_field) + " must list exactly n=" +
                          std::to_string(n) + " values, got " + std::to_string(input_count));
  }
  if (static_cast<int>(byzantine.size()) > t) {
    throw InvalidArgument("runner: " + std::to_string(byzantine.size()) +
                          " byzantine ids exceed t=" + std::to_string(t));
  }
  std::unordered_set<ProcessId> seen;
  for (const ProcessId id : byzantine) {
    if (id < 0 || id >= n) {
      throw InvalidArgument("runner: byzantine id " + std::to_string(id) +
                            " out of range [0, " + std::to_string(n) + ")");
    }
    if (!seen.insert(id).second) {
      throw InvalidArgument("runner: duplicate byzantine id " + std::to_string(id));
    }
  }
}

Runner::Runner(RunnerConfig config, std::unique_ptr<Adversary> adversary)
    : config_(std::move(config)),
      byzantine_(config_.byzantine.begin(), config_.byzantine.end()),
      adversary_(std::move(adversary)),
      rng_(config_.seed) {
  validate_runner_config(config_.n, config_.t, config_.byzantine, config_.inputs.size(),
                         "inputs");
  config_.dbft.n = config_.n;
  config_.dbft.t = config_.t;
  processes_.resize(config_.n);
  for (ProcessId id = 0; id < config_.n; ++id) {
    if (byzantine_.contains(id)) continue;
    correct_ids_.push_back(id);
    processes_[id] = std::make_unique<algo::DbftProcess>(
        id, config_.inputs[id], config_.dbft, [this](Message message) {
          network_.count_send();
          network_.send(message);
        });
  }
}

void Runner::start() {
  for (const ProcessId id : correct_ids_) processes_[id]->start();
}

bool Runner::step(Scheduler& scheduler) {
  if (adversary_) adversary_->before_step(*this);
  if (network_.idle()) return false;
  const std::size_t index = scheduler.pick(*this, rng_);
  const Message message = network_.take(index);
  network_.count_delivery();
  if (!byzantine_.contains(message.to)) processes_[message.to]->on_message(message);
  return true;
}

std::int64_t Runner::run(Scheduler& scheduler, std::int64_t max_steps) {
  std::int64_t steps = 0;
  while (steps < max_steps) {
    const bool all_halted = std::all_of(correct_ids_.begin(), correct_ids_.end(),
                                        [&](ProcessId id) { return processes_[id]->halted(); });
    if (all_halted) break;
    if (!step(scheduler)) break;
    ++steps;
  }
  return steps;
}

bool Runner::deliver_first(const std::function<bool(const Message&)>& predicate) {
  const std::optional<Message> message = network_.take_first(predicate);
  if (!message) return false;
  network_.count_delivery();
  if (!byzantine_.contains(message->to)) processes_[message->to]->on_message(*message);
  return true;
}

void Runner::inject(Message message) {
  HV_REQUIRE(byzantine_.contains(message.from));
  network_.count_send();
  network_.send(message);
}

const algo::DbftProcess& Runner::process(ProcessId id) const {
  HV_REQUIRE(processes_[id] != nullptr);
  return *processes_[id];
}

algo::DbftProcess& Runner::process(ProcessId id) {
  HV_REQUIRE(processes_[id] != nullptr);
  return *processes_[id];
}

bool Runner::all_correct_decided() const {
  return std::all_of(correct_ids_.begin(), correct_ids_.end(),
                     [&](ProcessId id) { return processes_[id]->decision().has_value(); });
}

std::optional<int> Runner::first_decision() const {
  for (const ProcessId id : correct_ids_) {
    if (processes_[id]->decision()) return processes_[id]->decision();
  }
  return std::nullopt;
}

std::string Runner::agreement_violation() const {
  std::optional<int> seen;
  for (const ProcessId id : correct_ids_) {
    const std::optional<int> decision = processes_[id]->decision();
    if (!decision) continue;
    if (seen && *seen != *decision) {
      return "p" + std::to_string(id) + " decided " + std::to_string(*decision) +
             " while another process decided " + std::to_string(*seen);
    }
    seen = decision;
  }
  return {};
}

std::string Runner::validity_violation() const {
  std::set<int> proposed;
  for (const ProcessId id : correct_ids_) proposed.insert(config_.inputs[id]);
  for (const ProcessId id : correct_ids_) {
    const std::optional<int> decision = processes_[id]->decision();
    if (decision && !proposed.contains(*decision)) {
      return "p" + std::to_string(id) + " decided the unproposed value " +
             std::to_string(*decision);
    }
  }
  return {};
}

// --- schedulers ----------------------------------------------------------------

std::size_t RandomScheduler::pick(const Runner& runner, std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> dist(0, runner.network().pending_count() - 1);
  return dist(rng);
}

std::size_t FifoScheduler::pick(const Runner& runner, std::mt19937_64& rng) {
  (void)runner;
  (void)rng;
  return 0;
}

std::size_t GoodRoundScheduler::pick(const Runner& runner, std::mt19937_64& rng) {
  (void)rng;
  const auto& pending = runner.network().pending();
  // Rank: lower rounds first; within a round, BV carrying the round's
  // parity from correct senders, then other correct traffic, then
  // Byzantine messages. This makes every round (r mod 2)-good whenever the
  // parity value is in play, realizing Definition 3.
  std::size_t best = 0;
  auto rank = [&](const Message& message) {
    const int parity = message.round % 2;
    int klass = 3;
    if (!runner.is_byzantine(message.from)) {
      klass = (message.type == MsgType::kBv &&
               message.payload == BitSet2::single(parity))
                  ? 0
                  : 1;
    }
    return std::pair<int, int>(message.round, klass);
  };
  for (std::size_t i = 1; i < pending.size(); ++i) {
    if (rank(pending[i]) < rank(pending[best])) best = i;
  }
  return best;
}

// --- adversaries ----------------------------------------------------------------

void EquivocatingAdversary::before_step(Runner& runner) {
  // Once any correct process reaches round r, every Byzantine process
  // equivocates in r: BV(0) to the first half of the correct processes,
  // BV(1) to the rest, and conflicting aux singletons likewise.
  int max_round = 1;
  for (const ProcessId id : runner.correct_ids()) {
    max_round = std::max(max_round, runner.process(id).current_round());
  }
  for (const ProcessId byz : runner.config().byzantine) {
    for (int round = 1; round <= max_round; ++round) {
      if (!injected_.insert({byz, round}).second) continue;
      const auto& correct = runner.correct_ids();
      for (std::size_t i = 0; i < correct.size(); ++i) {
        const int value = i < correct.size() / 2 ? 0 : 1;
        runner.inject({byz, correct[i], round, MsgType::kBv, BitSet2::single(value)});
        runner.inject({byz, correct[i], round, MsgType::kAux, BitSet2::single(1 - value)});
      }
    }
  }
}

}  // namespace hv::sim
