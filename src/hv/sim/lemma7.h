// Scripted replay of the non-termination execution of Lemma 7 / Appendix B:
// with n = 4, t = f = 1 and inputs 0,0,1, a Byzantine process plus a
// carefully chosen delivery order keep the correct estimates oscillating
// between (0,0,1) and (0,1,1) forever, so Algorithm 1 never terminates
// without the fairness assumption of Definition 3.
//
// Each scripted round has a two-against-one estimate pattern: maj1 and maj2
// hold the majority value M = 1 - (r mod 2), min holds the parity value
// m = r mod 2. The Byzantine process equivocates so that
//   * maj1 sees only M: qualifiers {M}, M != parity, no decision;
//   * maj2 and min see both values: qualifiers {0,1}, estimate <- parity.
// The new round starts with roles rotated (old min keeps m and becomes
// maj1', old maj2 flipped to m becomes maj2', old maj1 becomes min') and
// the pattern repeats with values swapped.
#ifndef HV_SIM_LEMMA7_H
#define HV_SIM_LEMMA7_H

#include <string>

#include "hv/sim/runner.h"

namespace hv::sim {

class Lemma7Script {
 public:
  /// Builds the n=4 runner (processes 0,1,2 correct with inputs 0,0,1;
  /// process 3 Byzantine) and starts it.
  Lemma7Script();

  /// Plays one more round of the oscillation. Returns an empty string on
  /// success, else a diagnostic describing where the replay diverged.
  std::string play_round();

  /// Convenience: plays `rounds` rounds; empty string iff all succeed and
  /// no correct process ever decides.
  std::string play_rounds(int rounds);

  const Runner& runner() const noexcept { return runner_; }
  Runner& runner() noexcept { return runner_; }

 private:
  Runner runner_;
  int round_ = 1;
  ProcessId maj1_ = 0;
  ProcessId maj2_ = 1;
  ProcessId min_ = 2;
};

}  // namespace hv::sim

#endif  // HV_SIM_LEMMA7_H
