// Quickstart: define a threshold automaton in the textual format, state an
// LTL property, and check it for EVERY admissible parameter valuation.
//
// The automaton below is a tiny reliable-broadcast core: processes either
// announce (incrementing the shared counter x) or wait; waiting processes
// may proceed once x reaches t+1-f (the -f slack models messages Byzantine
// processes may contribute).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "hv/checker/parameterized.h"
#include "hv/spec/compile.h"
#include "hv/ta/dot.h"
#include "hv/ta/parser.h"

int main() {
  const hv::ta::MultiRoundTa model = hv::ta::parse_ta(R"(
    ta Quickstart {
      parameters n, t, f;
      shared x;
      resilience n > 3*t;
      resilience t >= f;
      resilience f >= 0;
      processes n - f;
      initial A;
      locations B, W, D;
      rule announce: A -> B do x += 1;
      rule wait:     A -> W;
      rule proceed:  W -> D when x >= t + 1 - f;
      selfloop B;
      selfloop D;
    }
  )");
  const hv::ta::ThresholdAutomaton& ta = model.body();

  std::puts("=== the automaton, as Graphviz DOT ===");
  std::fputs(hv::ta::to_dot(ta).c_str(), stdout);

  // A property that holds: if nobody ever announces, nobody proceeds.
  const hv::spec::Property safety =
      hv::spec::compile(ta, "no_announce_no_proceed", "[](locB == 0) -> [](locD == 0)");
  // A property that fails: "eventually everyone leaves A and W" — all
  // processes may wait, and then x stays below every threshold forever.
  const hv::spec::Property liveness =
      hv::spec::compile(ta, "everyone_proceeds", "<>(locA == 0 && locW == 0)");

  for (const hv::spec::Property& property : {safety, liveness}) {
    const hv::checker::PropertyResult result = hv::checker::check_property(ta, property);
    std::printf("\n=== %s ===\n", property.name.c_str());
    std::printf("formula:  %s\n", property.formula_text.c_str());
    std::printf("verdict:  %s   (parameterized: all n > 3t, all f <= t)\n",
                hv::checker::to_string(result.verdict).c_str());
    std::printf("schemas:  %lld checked, %lld pruned, %.3fs\n",
                static_cast<long long>(result.schemas_checked),
                static_cast<long long>(result.schemas_pruned), result.seconds);
    if (result.counterexample) {
      std::puts("counterexample (replayed under concrete semantics):");
      std::fputs(result.counterexample->to_string(ta).c_str(), stdout);
    }
  }
  return 0;
}
