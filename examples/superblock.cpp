// Vector (superblock) consensus — how the Red Belly Blockchain combines
// everything the paper verifies: each process reliably broadcasts a
// proposal (Bracha RBC), n binary DBFT instances decide which proposals are
// included, and all correct processes agree on a superblock containing at
// least n - t of them.
//
// Build & run:  ./build/examples/superblock

#include <cstdio>

#include "hv/sim/vector_runner.h"

namespace {

void run_scenario(const char* title, hv::algo::VectorRunner::Config config) {
  hv::algo::VectorRunner runner(std::move(config));
  runner.start();
  const std::int64_t steps = runner.run_fair(10'000'000);
  std::printf("=== %s ===\n", title);
  std::printf("deliveries: %lld\n", static_cast<long long>(steps));
  for (const hv::sim::ProcessId id : runner.correct_ids()) {
    const auto vector = runner.process(id).decision();
    std::printf("  p%d superblock:", id);
    if (!vector) {
      std::puts(" (undecided)");
      continue;
    }
    for (const auto& [proposer, value] : *vector) {
      std::printf(" [p%d: %d]", proposer, value);
    }
    std::puts("");
  }
  const std::string agreement = runner.agreement_violation();
  std::printf("agreement: %s\n\n", agreement.empty() ? "ok" : agreement.c_str());
}

}  // namespace

int main() {
  {
    hv::algo::VectorRunner::Config config;
    config.n = 4;
    config.t = 1;
    config.proposals = {1001, 1002, 1003, 1004};
    run_scenario("n=4, t=1, no faults: all four proposals agreed", config);
  }
  {
    hv::algo::VectorRunner::Config config;
    config.n = 7;
    config.t = 2;
    config.proposals = {1, 2, 3, 4, 5, 6, 7};
    config.byzantine = {5, 6};  // silent: their slots decide 0
    run_scenario("n=7, t=2, two silent Byzantine processes", config);
  }
  return 0;
}
