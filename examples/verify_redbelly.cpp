// The paper's headline experiment: holistically verify the Red Belly
// Blockchain's DBFT binary consensus for every n and every f <= t < n/3.
//
//   ./build/examples/verify_redbelly           # bv-broadcast + simplified TA
//   ./build/examples/verify_redbelly --naive   # also attempt the composite
//                                              # automaton first (times out)
//
// Expected outcome (cf. Table 2): every bv-broadcast property and every
// Appendix-F consensus property holds; Agreement, Validity and (under the
// fairness assumption of Definition 3) Termination follow by Theorem 6.

#include <cstdio>
#include <cstring>

#include "hv/pipeline/holistic.h"

int main(int argc, char** argv) {
  hv::pipeline::HolisticOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--naive") == 0) {
      options.include_naive_attempt = true;
    } else {
      std::fprintf(stderr, "usage: %s [--naive]\n", argv[0]);
      return 2;
    }
  }

  std::puts("holistic verification of the Red Belly Blockchain consensus");
  std::puts("(binary value broadcast + DBFT binary consensus, any n, any f <= t < n/3)\n");
  const hv::pipeline::HolisticReport report = hv::pipeline::verify_red_belly_consensus(options);
  std::fputs(report.to_string().c_str(), stdout);
  return report.fully_verified() ? 0 : 1;
}
