// Negative controls: weaken the resilience condition from n > 3t to n > 2t
// and watch the checker produce concrete counterexamples (the paper reports
// generating an Inv1_0 counterexample in ~4s as a sanity check of the
// method).
//
//   * bv-broadcast: BV-Justification still holds (the -f slack never
//     exceeds t), but BV-Obligation/Uniformity break — with n = 2t+1 the
//     correct processes alone cannot push a counter to 2t+1, so some
//     processes may never deliver;
//   * simplified consensus: Inv1_0 (the agreement invariant) breaks — the
//     checker exhibits parameters and an execution where one process
//     decides 0 while another decided 1.
//
// Every counterexample below has been replayed against the concrete
// counter-system semantics before being printed.
//
// Build & run:  ./build/examples/find_counterexample

#include <cstdio>

#include "hv/checker/parameterized.h"
#include "hv/models/bv_broadcast.h"
#include "hv/models/simplified_consensus.h"

namespace {

void check_and_print(const hv::ta::ThresholdAutomaton& ta,
                     const std::vector<hv::spec::Property>& properties) {
  for (const hv::spec::Property& property : properties) {
    const hv::checker::PropertyResult result = hv::checker::check_property(ta, property);
    std::printf("  %-10s %s (%.2fs)\n", property.name.c_str(),
                hv::checker::to_string(result.verdict).c_str(), result.seconds);
    if (result.counterexample) {
      std::fputs(result.counterexample->to_string(ta).c_str(), stdout);
      std::puts("");
    }
  }
}

}  // namespace

int main() {
  {
    std::puts("=== bv-broadcast with resilience weakened to n > 2t ===");
    const hv::ta::ThresholdAutomaton weak = hv::models::bv_broadcast_weakened();
    check_and_print(weak, hv::models::bv_properties(weak));
  }
  {
    std::puts("=== simplified consensus with resilience weakened to n > 2t ===");
    const hv::ta::ThresholdAutomaton weak =
        hv::models::simplified_consensus_weakened_one_round();
    std::vector<hv::spec::Property> agreement_invariants;
    for (auto& property : hv::models::simplified_properties(weak)) {
      if (property.name == "Inv1_0" || property.name == "Inv1_1") {
        agreement_invariants.push_back(std::move(property));
      }
    }
    check_and_print(weak, agreement_invariants);
  }
  return 0;
}
