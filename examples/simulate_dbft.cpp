// Runs the actual DBFT pseudocode (Fig. 1 + Alg. 1) on the asynchronous
// network simulator, under three regimes:
//
//   1. fair scheduling (realizing Definition 3): decisions in a few rounds,
//      with Byzantine equivocators present;
//   2. random asynchronous scheduling: safety (agreement/validity) holds on
//      every run; termination is typical but not guaranteed;
//   3. the Lemma 7 / Appendix B adversary: estimates oscillate forever and
//      no process decides — until the schedule turns fair again.
//
// Build & run:  ./build/examples/simulate_dbft

#include <cstdio>

#include "hv/sim/lemma7.h"
#include "hv/sim/runner.h"

namespace {

void report(const char* title, const hv::sim::Runner& runner, std::int64_t steps) {
  std::printf("=== %s ===\n", title);
  std::printf("deliveries: %lld, messages sent: %lld\n", static_cast<long long>(steps),
              static_cast<long long>(runner.network().total_sent()));
  for (const hv::sim::ProcessId id : runner.correct_ids()) {
    const auto& process = runner.process(id);
    std::printf("  p%d: round=%d est=%d decision=%s\n", id, process.current_round(),
                process.estimate(),
                process.decision() ? std::to_string(*process.decision()).c_str() : "-");
  }
  const std::string agreement = runner.agreement_violation();
  const std::string validity = runner.validity_violation();
  std::printf("agreement: %s, validity: %s\n\n", agreement.empty() ? "ok" : agreement.c_str(),
              validity.empty() ? "ok" : validity.c_str());
}

}  // namespace

int main() {
  // 1. n=7, t=2, two equivocating Byzantine processes, fair scheduling.
  {
    hv::sim::RunnerConfig config;
    config.n = 7;
    config.t = 2;
    config.byzantine = {5, 6};
    config.inputs = {0, 1, 0, 1, 0, 0, 0};
    hv::sim::Runner runner(config, std::make_unique<hv::sim::EquivocatingAdversary>());
    runner.start();
    hv::sim::GoodRoundScheduler scheduler;
    const std::int64_t steps = runner.run(scheduler, 1'000'000);
    report("n=7, t=2, 2 equivocators, fair (Definition 3) scheduling", runner, steps);
  }

  // 2. Random asynchronous schedules: safety on every seed.
  for (const std::uint64_t seed : {7ull, 42ull}) {
    hv::sim::RunnerConfig config;
    config.n = 4;
    config.t = 1;
    config.byzantine = {3};
    config.inputs = {0, 1, 1, 0};
    config.seed = seed;
    hv::sim::Runner runner(config, std::make_unique<hv::sim::EquivocatingAdversary>());
    runner.start();
    hv::sim::RandomScheduler scheduler;
    const std::int64_t steps = runner.run(scheduler, 200'000);
    char title[96];
    std::snprintf(title, sizeof title, "n=4, t=1, equivocator, random schedule (seed %llu)",
                  static_cast<unsigned long long>(seed));
    report(title, runner, steps);
  }

  // 3. The Lemma 7 oscillation: 8 adversarial rounds, then a fair rescue.
  {
    hv::sim::Lemma7Script script;
    const std::string diagnostic = script.play_rounds(8);
    if (!diagnostic.empty()) {
      std::printf("lemma 7 replay diverged: %s\n", diagnostic.c_str());
      return 1;
    }
    std::puts("=== Lemma 7 adversary (n=4, t=f=1, inputs 0,0,1) ===");
    std::puts("after 8 adversarial rounds:");
    for (const hv::sim::ProcessId id : script.runner().correct_ids()) {
      const auto& process = script.runner().process(id);
      std::printf("  p%d: round=%d est=%d decided=%s   estimates so far:", id,
                  process.current_round(), process.estimate(),
                  process.decision() ? "yes" : "no");
      for (const int est : process.estimate_history()) std::printf(" %d", est);
      std::puts("");
    }
    std::puts("-> the estimate pattern (two against one) oscillates; nobody decides.");
    hv::sim::GoodRoundScheduler scheduler;
    script.runner().run(scheduler, 1'000'000);
    std::printf("after switching to fair scheduling: all decided = %s\n\n",
                script.runner().all_correct_decided() ? "yes" : "no");
  }
  return 0;
}
